//! Live analysis publication: the mailbox between the study driver and
//! the HTTP server.
//!
//! `cwa-obs` cannot depend on `cwa-core` (it sits below it), so the
//! live endpoints serve **pre-rendered JSON strings**: the live driver
//! assembles its current report and figure payloads, renders them, and
//! publishes them into a shared [`LiveSnapshot`]; the scrape server
//! hands the latest published string to any `/report` or `/figures/*`
//! request. Publishing replaces the whole document atomically — a
//! scrape never sees a half-written payload.
//!
//! Like the heartbeat ring, the mutexes here recover from poisoning:
//! telemetry must outlive a panicking publisher.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The three live figure endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveFigure {
    /// `/figures/adoption` — Figure-2 view: cumulative and windowed
    /// traffic series against the adoption curve.
    Adoption,
    /// `/figures/geo` — Figure-3 view: district intensities.
    Geo,
    /// `/figures/outbreak` — §3 outbreak view: state/district growth
    /// tables.
    Outbreak,
}

impl LiveFigure {
    /// All figures, in route order.
    pub const ALL: [LiveFigure; 3] = [LiveFigure::Adoption, LiveFigure::Geo, LiveFigure::Outbreak];

    /// The HTTP route the figure is served under.
    pub fn route(self) -> &'static str {
        match self {
            LiveFigure::Adoption => "/figures/adoption",
            LiveFigure::Geo => "/figures/geo",
            LiveFigure::Outbreak => "/figures/outbreak",
        }
    }
}

/// Latest published live documents (all pre-rendered JSON), plus
/// publish bookkeeping: how often each slot class was written and how
/// long ago the last write happened (`/healthz` reports the age — a
/// live run whose publisher went quiet is visible even while records
/// still flow).
#[derive(Debug, Default)]
pub struct LiveSnapshot {
    report: Mutex<Option<String>>,
    adoption: Mutex<Option<String>>,
    geo: Mutex<Option<String>>,
    outbreak: Mutex<Option<String>>,
    report_publishes: AtomicU64,
    figure_publishes: AtomicU64,
    last_publish: Mutex<Option<Instant>>,
}

impl LiveSnapshot {
    /// Creates an empty snapshot (every endpoint still unpublished).
    pub fn new() -> Self {
        LiveSnapshot::default()
    }

    fn slot(&self, figure: LiveFigure) -> &Mutex<Option<String>> {
        match figure {
            LiveFigure::Adoption => &self.adoption,
            LiveFigure::Geo => &self.geo,
            LiveFigure::Outbreak => &self.outbreak,
        }
    }

    fn note_publish(&self) {
        *self.last_publish.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
    }

    /// Publishes the current `/report` document.
    pub fn publish_report(&self, json: String) {
        *self.report.lock().unwrap_or_else(|e| e.into_inner()) = Some(json);
        self.report_publishes.fetch_add(1, Ordering::Relaxed);
        self.note_publish();
    }

    /// The latest `/report` document, if one has been published.
    pub fn report(&self) -> Option<String> {
        self.report
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Publishes one figure document.
    pub fn publish_figure(&self, figure: LiveFigure, json: String) {
        *self.slot(figure).lock().unwrap_or_else(|e| e.into_inner()) = Some(json);
        self.figure_publishes.fetch_add(1, Ordering::Relaxed);
        self.note_publish();
    }

    /// The latest document for `figure`, if published.
    pub fn figure(&self, figure: LiveFigure) -> Option<String> {
        self.slot(figure)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of `/report` documents published so far.
    pub fn report_publishes(&self) -> u64 {
        self.report_publishes.load(Ordering::Relaxed)
    }

    /// Number of figure documents published so far (all three routes).
    pub fn figure_publishes(&self) -> u64 {
        self.figure_publishes.load(Ordering::Relaxed)
    }

    /// Time since the most recent publish of any document, or `None`
    /// if nothing has been published yet.
    pub fn publish_age(&self) -> Option<Duration> {
        self.last_publish
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|at| at.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_and_read_back() {
        let live = LiveSnapshot::new();
        assert_eq!(live.report(), None);
        for f in LiveFigure::ALL {
            assert_eq!(live.figure(f), None);
        }
        live.publish_report("{\"day\":1}".into());
        live.publish_figure(LiveFigure::Geo, "{\"districts\":[]}".into());
        assert_eq!(live.report().as_deref(), Some("{\"day\":1}"));
        assert_eq!(
            live.figure(LiveFigure::Geo).as_deref(),
            Some("{\"districts\":[]}")
        );
        assert_eq!(live.figure(LiveFigure::Adoption), None);
        // Replacement is whole-document.
        live.publish_report("{\"day\":2}".into());
        assert_eq!(live.report().as_deref(), Some("{\"day\":2}"));
    }

    #[test]
    fn publish_bookkeeping_counts_and_ages() {
        let live = LiveSnapshot::new();
        assert_eq!(live.report_publishes(), 0);
        assert_eq!(live.figure_publishes(), 0);
        assert_eq!(live.publish_age(), None);
        live.publish_report("{}".into());
        live.publish_report("{}".into());
        live.publish_figure(LiveFigure::Adoption, "{}".into());
        assert_eq!(live.report_publishes(), 2);
        assert_eq!(live.figure_publishes(), 1);
        let age = live.publish_age().expect("published");
        assert!(age < Duration::from_secs(60));
    }

    #[test]
    fn routes_are_stable() {
        assert_eq!(LiveFigure::Adoption.route(), "/figures/adoption");
        assert_eq!(LiveFigure::Geo.route(), "/figures/geo");
        assert_eq!(LiveFigure::Outbreak.route(), "/figures/outbreak");
    }

    #[test]
    fn poisoned_snapshot_recovers() {
        let live = Arc::new(LiveSnapshot::new());
        live.publish_report("{\"day\":1}".into());
        let poisoner = Arc::clone(&live);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.report.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert_eq!(live.report().as_deref(), Some("{\"day\":1}"));
        live.publish_report("{\"day\":2}".into());
        assert_eq!(live.report().as_deref(), Some("{\"day\":2}"));
    }
}
