//! Tiny HTTP/1.0 scrape server for live telemetry.
//!
//! Built directly on `std::net::TcpListener` — no vendored HTTP
//! dependency — because a Prometheus-style scrape endpoint needs
//! nothing beyond "read one request line, write one response, close".
//! The accept loop runs on its own thread with a nonblocking listener
//! polled against a stop flag, so shutdown needs no self-connect
//! trick and no platform-specific socket teardown.
//!
//! Endpoints:
//!
//! | path            | content                                         |
//! |-----------------|-------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition 0.0.4                |
//! | `/metrics.json` | cwa-obs/v1 JSON snapshot                        |
//! | `/progress`     | run progress: days done/total, per-shard rates, |
//! |                 | stall ratios, ETA from the heartbeat ring       |
//! | `/healthz`      | readiness + liveness (503 when stalled)         |
//! | `/report`       | live claims table (only on `study --live` runs) |
//! | `/figures/*`    | live figure data: adoption, geo, outbreak       |
//! | `/dashboard`    | self-contained HTML dashboard over all of these |
//!
//! Content types are deliberate: `/metrics` is Prometheus text,
//! `/dashboard` is `text/html`, and everything else — including error
//! bodies — is `application/json`. Live endpoints distinguish "this is
//! not a live run" (404) from "live, but nothing published yet" (503).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::heartbeat::HeartbeatRing;
use crate::live::{LiveFigure, LiveSnapshot};
use crate::{json_string, Registry};

/// Metric names the progress/health endpoints are derived from. These
/// are the names the pipeline registers (see `cwa-simnet`,
/// `cwa-netflow`, `cwa-core`); a registry without them simply reports
/// zero progress.
pub mod names {
    /// Flow records ingested across all collectors.
    pub const RECORDS: &str = "netflow.collector.records";
    /// Ingest throughput over the heartbeat window, published back
    /// into the registry by the sampler so plain `/metrics` scrapes
    /// (and the jsonl stream) carry a rate without differencing.
    pub const RECORDS_PER_SEC: &str = "netflow.collector.records_per_sec";
    /// Flow bytes ingested across all collectors.
    pub const BYTES: &str = "netflow.collector.bytes";
    /// Flow events emitted by the traffic generator (producer side;
    /// pre-sampling, both directions).
    pub const EVENTS: &str = "simnet.traffic.flow_events";
    /// Producer throughput over the heartbeat window — the
    /// generator-side twin of [`RECORDS_PER_SEC`], published by the
    /// sampler so `/metrics` scrapes can attribute a stall to the
    /// producer (events flat) vs the collector (records flat).
    pub const EVENTS_PER_SEC: &str = "simnet.traffic.events_per_sec";
    /// Simulated hours completed / total.
    pub const HOURS_DONE: &str = "sim.progress.hours_done";
    /// Total simulated hours in the run.
    pub const HOURS_TOTAL: &str = "sim.progress.hours_total";
    /// Simulated days completed / total.
    pub const DAYS_DONE: &str = "sim.progress.days_done";
    /// Total simulated days in the run.
    pub const DAYS_TOTAL: &str = "sim.progress.days_total";
    /// 1 once the study's report has been assembled.
    pub const DONE: &str = "sim.progress.done";
}

/// Everything a scrape needs: the live registry, the heartbeat ring
/// for rate derivation, and the liveness policy.
#[derive(Clone)]
pub struct TelemetryState {
    /// The registry the run is writing into.
    pub registry: Arc<Registry>,
    /// Heartbeat ring (shared with the [`crate::Heartbeat`] sampler).
    pub ring: Arc<Mutex<HeartbeatRing>>,
    /// `/healthz` reports `stalled` (HTTP 503) when the record counter
    /// made no progress across this many consecutive heartbeats while
    /// the run is not done.
    pub stall_heartbeats: usize,
    /// Live analysis documents (`/report`, `/figures/*`); `None` on
    /// batch runs, where those endpoints answer 404.
    pub live: Option<Arc<LiveSnapshot>>,
}

/// A running scrape server; shuts down on [`TelemetryServer::shutdown`]
/// or drop.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) and
    /// starts serving. The bound address — with the real port — is
    /// available via [`TelemetryServer::local_addr`].
    pub fn serve<A: ToSocketAddrs>(addr: A, state: TelemetryState) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cwa-telemetry".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = handle_connection(stream, &state);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;

        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (real port even when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the server thread. In-flight
    /// responses finish first (the accept loop only checks the flag
    /// between connections).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TelemetryServer({})", self.addr)
    }
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, state: &TelemetryState) -> std::io::Result<()> {
    // Accepted sockets do not reliably inherit the listener's
    // (nonblocking) mode on every platform; force blocking with a
    // timeout so a stuck client cannot wedge the accept loop forever.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    let path = match read_request_path(&mut stream) {
        Some(path) => path,
        None => {
            return respond(
                &mut stream,
                400,
                "Bad Request",
                "application/json",
                "{\"error\":\"malformed request line\"}\n",
            )
        }
    };

    match path.as_str() {
        "/metrics" => {
            let body = state.registry.to_prometheus();
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body)
        }
        "/metrics.json" => {
            let body = state.registry.to_json();
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/progress" => {
            let body = progress_body(state);
            respond(&mut stream, 200, "OK", "application/json", &body)
        }
        "/healthz" => {
            let (status, reason, body) = health_body(state);
            respond(&mut stream, status, reason, "application/json", &body)
        }
        "/report" => live_respond(&mut stream, state, |live| live.report()),
        "/figures/adoption" => {
            live_respond(&mut stream, state, |live| live.figure(LiveFigure::Adoption))
        }
        "/figures/geo" => live_respond(&mut stream, state, |live| live.figure(LiveFigure::Geo)),
        "/figures/outbreak" => {
            live_respond(&mut stream, state, |live| live.figure(LiveFigure::Outbreak))
        }
        "/dashboard" => respond(
            &mut stream,
            200,
            "OK",
            "text/html; charset=utf-8",
            include_str!("dashboard.html"),
        ),
        "/" => respond(
            &mut stream,
            200,
            "OK",
            "text/plain",
            "cwa-repro live telemetry\n\
             /metrics            Prometheus text exposition\n\
             /metrics.json       cwa-obs/v1 snapshot\n\
             /progress           run progress, per-shard rates, ETA\n\
             /healthz            readiness + liveness\n\
             /report             live claims table (study --live)\n\
             /figures/adoption   live Figure-2 view (study --live)\n\
             /figures/geo        live Figure-3 view (study --live)\n\
             /figures/outbreak   live outbreak view (study --live)\n\
             /dashboard          self-contained HTML dashboard\n",
        ),
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "application/json",
            "{\"error\":\"not found\"}\n",
        ),
    }
}

/// Serves one live document: 404 when the run has no live layer at
/// all, 503 while the driver has not published the first document yet.
fn live_respond<F>(stream: &mut TcpStream, state: &TelemetryState, fetch: F) -> std::io::Result<()>
where
    F: Fn(&LiveSnapshot) -> Option<String>,
{
    match &state.live {
        None => respond(
            stream,
            404,
            "Not Found",
            "application/json",
            "{\"error\":\"not a live run; start with study --live\"}\n",
        ),
        Some(live) => match fetch(live) {
            Some(body) => respond(stream, 200, "OK", "application/json", &body),
            None => respond(
                stream,
                503,
                "Service Unavailable",
                "application/json",
                "{\"error\":\"no document published yet\"}\n",
            ),
        },
    }
}

/// Parses `GET <path> ...` off the first request line; drains nothing
/// else (HTTP/1.0, connection closes after the response anyway).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 1024];
    let mut line = Vec::new();
    loop {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            break;
        }
        line.extend_from_slice(&buf[..n]);
        if line.contains(&b'\n') || line.len() > 4096 {
            break;
        }
    }
    let line = String::from_utf8_lossy(&line);
    let first = line.lines().next()?;
    let mut parts = first.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Ignore any query string: /progress?pretty routes like /progress.
    let path = path.split('?').next().unwrap_or(path);
    Some(path.to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Formats an f64 as JSON: finite values with limited precision,
/// non-finite as `null` (JSON has no Inf/NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

/// Shard ids present in a sample, discovered from the
/// `sim.shard.NN.records` counters the sharded driver registers.
fn shard_ids(sample: &BTreeMap<String, i64>) -> Vec<String> {
    sample
        .keys()
        .filter_map(|k| {
            let id = k.strip_prefix("sim.shard.")?.strip_suffix(".records")?;
            // Exact `sim.shard.NN.records` only — not, say,
            // `sim.shard.NN.peak_resident_records`.
            (!id.contains('.')).then(|| id.to_string())
        })
        .collect()
}

/// Builds the `/progress` JSON document (`cwa-progress/v1`).
fn progress_body(state: &TelemetryState) -> String {
    let sample = state.registry.sample();
    let get = |k: &str| sample.get(k).copied().unwrap_or(0);
    let ring = state.ring.lock().unwrap_or_else(|e| e.into_inner());

    let hours_total = get(names::HOURS_TOTAL);
    let hours_done = get(names::HOURS_DONE);
    let done = get(names::DONE) == 1;
    let run_state = if done { "done" } else { "running" };

    // ETA: remaining simulated hours over the hours/s rate observed
    // across the heartbeat window. Null until the window shows
    // forward progress; 0 once the run is done.
    let eta_s = if done {
        Some(0.0)
    } else {
        match ring.window_rate(names::HOURS_DONE) {
            Some(rate) if rate > 0.0 => Some(((hours_total - hours_done).max(0)) as f64 / rate),
            _ => None,
        }
    };

    let mut shards = String::new();
    for (i, id) in shard_ids(&sample).iter().enumerate() {
        let prefix = format!("sim.shard.{id}");
        let records_rate = ring.window_rate(&format!("{prefix}.records"));
        // Stall ratio: fraction of the window the shard spent blocked
        // on its channel (producer side) or waiting for input
        // (consumer side).
        let ratio = |counter: &str| {
            ring.window_delta(&format!("{prefix}.{counter}"))
                .map(|(d, dt)| (d.max(0) as f64 / dt as f64).min(1.0))
        };
        if i > 0 {
            shards.push(',');
        }
        shards.push_str(&format!(
            "{{\"shard\":{},\"hours_done\":{},\"records\":{},\
             \"records_per_s\":{},\"send_block_ratio\":{},\"recv_idle_ratio\":{}}}",
            json_string(id),
            get(&format!("{prefix}.hours_done")),
            get(&format!("{prefix}.records")),
            json_opt_f64(records_rate),
            json_opt_f64(ratio("send_block_ns")),
            json_opt_f64(ratio("recv_idle_ns")),
        ));
    }

    format!(
        "{{\"schema\":\"cwa-progress/v1\",\"state\":\"{run_state}\",\
         \"days_done\":{},\"days_total\":{},\
         \"hours_done\":{hours_done},\"hours_total\":{hours_total},\
         \"records\":{},\"records_per_s\":{},\"bytes_per_s\":{},\
         \"events\":{},\"events_per_s\":{},\
         \"eta_s\":{},\"heartbeats\":{},\"shards\":[{shards}]}}",
        get(names::DAYS_DONE),
        get(names::DAYS_TOTAL),
        get(names::RECORDS),
        json_opt_f64(ring.window_rate(names::RECORDS)),
        json_opt_f64(ring.window_rate(names::BYTES)),
        get(names::EVENTS),
        json_opt_f64(ring.window_rate(names::EVENTS)),
        json_opt_f64(eta_s),
        ring.total(),
    )
}

/// Builds the `/healthz` response: readiness (a heartbeat has been
/// taken) and liveness (records still advancing, or the run is done).
fn health_body(state: &TelemetryState) -> (u16, &'static str, String) {
    let sample = state.registry.sample();
    let done = sample.get(names::DONE).copied().unwrap_or(0) == 1;
    let ring = state.ring.lock().unwrap_or_else(|e| e.into_inner());
    let ready = !ring.is_empty();
    // A stall needs BOTH the record counter and simulated time to be
    // flat: a live/replay run paces itself against wall clock, so
    // records legitimately idle between simulated hours — only "no
    // records AND no simulated progress" is a wedged run.
    let stalled = !done
        && ring.stalled(names::RECORDS, state.stall_heartbeats)
        && ring.stalled(names::HOURS_DONE, state.stall_heartbeats);

    let status_word = if stalled {
        "stalled"
    } else if done {
        "done"
    } else {
        "ok"
    };
    // Live runs also surface how stale the published documents are: a
    // publisher that went quiet is visible here even while records
    // still flow. Batch runs report `"live": null`.
    let live = match &state.live {
        None => "null".to_string(),
        Some(live) => format!(
            "{{\"report_publishes\":{},\"figure_publishes\":{},\"publish_age_s\":{}}}",
            live.report_publishes(),
            live.figure_publishes(),
            json_opt_f64(live.publish_age().map(|age| age.as_secs_f64())),
        ),
    };
    let body = format!(
        "{{\"status\":\"{status_word}\",\"ready\":{ready},\"done\":{done},\
         \"heartbeats\":{},\"live\":{live}}}",
        ring.total()
    );
    if stalled {
        (503, "Service Unavailable", body)
    } else {
        (200, "OK", body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heartbeat::HeartbeatSample;

    /// GET returning (status, content-type, body).
    fn get_full(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let status: u16 = response
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let content_type = response
            .lines()
            .take_while(|l| !l.is_empty())
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .unwrap_or_default()
            .to_string();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, content_type, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let (status, _, body) = get_full(addr, path);
        (status, body)
    }

    fn test_state() -> TelemetryState {
        let registry = Arc::new(Registry::new());
        registry.counter(names::RECORDS).add(1_000);
        registry.counter(names::BYTES).add(64_000);
        registry.counter(names::EVENTS).add(4_000);
        registry.gauge(names::HOURS_TOTAL).set(264);
        registry.gauge(names::HOURS_DONE).set(24);
        registry.gauge(names::DAYS_TOTAL).set(11);
        registry.gauge(names::DAYS_DONE).set(1);
        registry.gauge(names::DONE).set(0);
        registry.counter("sim.shard.00.records").add(500);
        registry.counter("sim.shard.01.records").add(500);

        let mut ring = HeartbeatRing::new(16);
        for i in 0..4u64 {
            let v = |base: i64| base + (i as i64) * 100;
            ring.push(HeartbeatSample {
                t_ns: i * 1_000_000_000,
                values: [
                    (names::RECORDS.to_string(), v(0)),
                    (names::BYTES.to_string(), v(0) * 64),
                    (names::EVENTS.to_string(), v(0) * 4),
                    (names::HOURS_DONE.to_string(), (i as i64) * 6),
                    ("sim.shard.00.records".to_string(), v(0) / 2),
                    ("sim.shard.01.records".to_string(), v(0) / 2),
                ]
                .into_iter()
                .collect(),
            });
        }
        TelemetryState {
            registry,
            ring: Arc::new(Mutex::new(ring)),
            stall_heartbeats: 3,
            live: None,
        }
    }

    #[test]
    fn serves_all_endpoints_and_shuts_down() {
        let server = TelemetryServer::serve("127.0.0.1:0", test_state()).expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE netflow_collector_records_total counter"));
        assert!(body.ends_with('\n'));

        let (status, body) = get(addr, "/metrics.json");
        assert_eq!(status, 200);
        assert!(body.contains("\"cwa-obs/v1\""));

        let (status, body) = get(addr, "/progress");
        assert_eq!(status, 200);
        assert!(body.contains("\"cwa-progress/v1\""), "got: {body}");
        assert!(body.contains("\"state\":\"running\""), "got: {body}");
        assert!(body.contains("\"records_per_s\":100.000"), "got: {body}");
        assert!(body.contains("\"events\":4000"), "got: {body}");
        assert!(body.contains("\"events_per_s\":400.000"), "got: {body}");
        assert!(body.contains("\"shard\":\"00\""), "got: {body}");
        // 240 hours remain at 6 hours/s → 40s ETA.
        assert!(body.contains("\"eta_s\":40.000"), "got: {body}");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "got: {body}");
        assert!(body.contains("\"ready\":true"), "got: {body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err(),
            "listener must be closed after shutdown"
        );
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let server = TelemetryServer::serve("127.0.0.1:0", test_state()).expect("bind");
        let addr = server.local_addr();
        let paths = ["/metrics", "/metrics.json", "/progress", "/healthz"];
        let handles: Vec<_> = paths
            .into_iter()
            .map(|path| {
                std::thread::spawn(move || {
                    let (status, body) = get(addr, path);
                    assert_eq!(status, 200, "{path}");
                    assert!(!body.is_empty(), "{path}");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("scrape thread");
        }
        server.shutdown();
    }

    #[test]
    fn healthz_reports_stall_with_503() {
        let state = test_state();
        {
            let mut ring = state.ring.lock().unwrap();
            for i in 4..10u64 {
                ring.push(HeartbeatSample {
                    t_ns: i * 1_000_000_000,
                    values: [(names::RECORDS.to_string(), 300)].into_iter().collect(),
                });
            }
        }
        let server = TelemetryServer::serve("127.0.0.1:0", state).expect("bind");
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\":\"stalled\""), "got: {body}");
        server.shutdown();
    }

    #[test]
    fn healthz_stays_ok_when_simulated_time_advances_without_records() {
        // Live/replay runs idle between simulated hours: the record
        // counter may be flat across many heartbeats while the sim
        // clock still moves. That must NOT read as a stall.
        let state = test_state();
        {
            let mut ring = state.ring.lock().unwrap();
            for i in 4..10u64 {
                ring.push(HeartbeatSample {
                    t_ns: i * 1_000_000_000,
                    values: [
                        (names::RECORDS.to_string(), 300),
                        (names::HOURS_DONE.to_string(), i as i64 * 6),
                    ]
                    .into_iter()
                    .collect(),
                });
            }
        }
        let server = TelemetryServer::serve("127.0.0.1:0", state).expect("bind");
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 200, "got: {body}");
        assert!(body.contains("\"status\":\"ok\""), "got: {body}");
        server.shutdown();
    }

    #[test]
    fn live_endpoints_answer_404_on_batch_runs() {
        let server = TelemetryServer::serve("127.0.0.1:0", test_state()).expect("bind");
        let addr = server.local_addr();
        for path in [
            "/report",
            "/figures/adoption",
            "/figures/geo",
            "/figures/outbreak",
        ] {
            let (status, body) = get(addr, path);
            assert_eq!(status, 404, "{path}: {body}");
            assert!(body.contains("not a live run"), "{path}: {body}");
        }
        server.shutdown();
    }

    #[test]
    fn live_endpoints_serve_published_documents() {
        let live = Arc::new(LiveSnapshot::new());
        let mut state = test_state();
        state.live = Some(Arc::clone(&live));
        let server = TelemetryServer::serve("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();

        // Before the first publication: 503, the run just hasn't
        // produced a document yet.
        let (status, body) = get(addr, "/report");
        assert_eq!(status, 503, "got: {body}");
        assert!(body.contains("no document published yet"), "got: {body}");

        live.publish_report("{\"schema\":\"cwa-live/v1\",\"day\":3}".into());
        live.publish_figure(LiveFigure::Geo, "{\"district_flows\":[1,2]}".into());
        let (status, body) = get(addr, "/report");
        assert_eq!(status, 200);
        assert!(body.contains("\"cwa-live/v1\""), "got: {body}");
        let (status, body) = get(addr, "/figures/geo");
        assert_eq!(status, 200);
        assert!(body.contains("\"district_flows\""), "got: {body}");
        let (status, _) = get(addr, "/figures/adoption");
        assert_eq!(status, 503, "unpublished figure");

        // Publishing replaces the document the server hands out.
        live.publish_report("{\"schema\":\"cwa-live/v1\",\"day\":4}".into());
        let (_, body) = get(addr, "/report");
        assert!(body.contains("\"day\":4"), "got: {body}");
        server.shutdown();
    }

    #[test]
    fn scrapes_survive_a_poisoned_ring() {
        // Regression (see heartbeat.rs): a poisoned ring used to kill
        // every later /progress and /healthz response.
        let state = test_state();
        let poisoner = Arc::clone(&state.ring);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(state.ring.lock().is_err(), "ring lock must be poisoned");
        let server = TelemetryServer::serve("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();
        let (status, body) = get(addr, "/progress");
        assert_eq!(status, 200, "got: {body}");
        assert!(body.contains("\"cwa-progress/v1\""), "got: {body}");
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn dashboard_is_served_and_self_contained() {
        let server = TelemetryServer::serve("127.0.0.1:0", test_state()).expect("bind");
        let (status, content_type, body) = get_full(server.local_addr(), "/dashboard");
        assert_eq!(status, 200);
        assert_eq!(content_type, "text/html; charset=utf-8");
        assert!(body.starts_with("<!DOCTYPE html>"), "got: {body:.60}");
        // Self-contained: inline everything, zero external references.
        for needle in ["http:", "https:", "src=", "href=", "@import", "url("] {
            assert!(!body.contains(needle), "external reference {needle:?}");
        }
        // The page drives every polled endpoint.
        for endpoint in [
            "/report",
            "/figures/adoption",
            "/figures/geo",
            "/figures/outbreak",
            "/progress",
            "/metrics.json",
        ] {
            assert!(body.contains(endpoint), "dashboard must poll {endpoint}");
        }
        server.shutdown();
    }

    #[test]
    fn content_types_are_correct_everywhere() {
        let server = TelemetryServer::serve("127.0.0.1:0", test_state()).expect("bind");
        let addr = server.local_addr();
        let cases = [
            ("/metrics", "text/plain; version=0.0.4"),
            ("/metrics.json", "application/json"),
            ("/progress", "application/json"),
            ("/healthz", "application/json"),
            ("/report", "application/json"),
            ("/figures/adoption", "application/json"),
            ("/nope", "application/json"),
        ];
        for (path, expected) in cases {
            let (_, content_type, _) = get_full(addr, path);
            assert_eq!(content_type, expected, "{path}");
        }
        server.shutdown();
    }

    #[test]
    fn healthz_surfaces_publish_age_on_live_runs() {
        let live = Arc::new(LiveSnapshot::new());
        let mut state = test_state();
        state.live = Some(Arc::clone(&live));
        let server = TelemetryServer::serve("127.0.0.1:0", state).expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"report_publishes\":0"), "got: {body}");
        assert!(body.contains("\"publish_age_s\":null"), "got: {body}");

        live.publish_report("{}".into());
        live.publish_figure(LiveFigure::Geo, "{}".into());
        let (_, body) = get(addr, "/healthz");
        assert!(body.contains("\"report_publishes\":1"), "got: {body}");
        assert!(body.contains("\"figure_publishes\":1"), "got: {body}");
        assert!(!body.contains("\"publish_age_s\":null"), "got: {body}");
        server.shutdown();
    }

    #[test]
    fn healthz_reports_null_live_on_batch_runs() {
        let server = TelemetryServer::serve("127.0.0.1:0", test_state()).expect("bind");
        let (_, body) = get(server.local_addr(), "/healthz");
        assert!(body.contains("\"live\":null"), "got: {body}");
        server.shutdown();
    }

    #[test]
    fn done_run_reports_zero_eta() {
        let state = test_state();
        state.registry.gauge(names::DONE).set(1);
        state.registry.gauge(names::HOURS_DONE).set(264);
        let server = TelemetryServer::serve("127.0.0.1:0", state).expect("bind");
        let (status, body) = get(server.local_addr(), "/progress");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"done\""), "got: {body}");
        assert!(body.contains("\"eta_s\":0.000"), "got: {body}");
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 200, "done is healthy even with flat records");
        assert!(body.contains("\"status\":\"done\""), "got: {body}");
        server.shutdown();
    }
}
