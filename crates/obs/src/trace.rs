//! The flight recorder: per-thread ring buffers of timestamped span
//! events with a Chrome trace-event JSON export.
//!
//! Metrics (the sibling module) answer *how much*; the flight recorder
//! answers *when* and *where the time went* — which shard was busy
//! producing, which one sat blocked on a bounded channel, and how long
//! each analysis stage ran inside every export hour. The design rules
//! mirror the metrics layer's:
//!
//! * **Cheap on hot paths.** Recording an event is one relaxed
//!   `fetch_add` on the buffer head plus three relaxed stores — no
//!   locks, no allocation. Span names are interned to integer ids at
//!   wiring time ([`Tracer::name`]), never on the recording path.
//! * **Bounded memory.** Every [`TraceBuf`] is a fixed-capacity ring;
//!   when it wraps, the *oldest* events are overwritten and a dropped
//!   counter keeps the loss visible in the export.
//! * **Observation only.** Tracing reads the wall clock and nothing
//!   else — it never touches an RNG stream or feeds back into the
//!   pipeline, so reports stay byte-identical with tracing on or off
//!   (asserted by `tests/metrics.rs`).
//!
//! Each buffer is **single-writer**: exactly one thread records into
//! it (the pipeline hands every worker its own buffer). The export
//! ([`Tracer::to_chrome_json`]) runs after the workers have joined, so
//! it observes a quiescent ring.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An interned span name (resolve once via [`Tracer::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameId(u32);

/// Event kinds stored in a ring slot.
const KIND_COMPLETE: u64 = 0;
const KIND_INSTANT: u64 = 1;

/// Default ring capacity per buffer (events). At three `u64`s per slot
/// this is 1.5 MiB per thread — enough for per-hour spans over the full
/// 11-day study plus per-datagram collector events at study scales.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One thread's ring buffer of trace events.
///
/// Created through [`Tracer::thread`]; the tracer keeps a handle for
/// export. Writes are lock-free (single writer per buffer); the ring
/// drops the oldest events on overflow and counts the drops.
pub struct TraceBuf {
    pid: u32,
    tid: u32,
    label: String,
    epoch: Instant,
    capacity: usize,
    /// Total events ever written (ring index = head % capacity).
    head: AtomicU64,
    /// Events overwritten by ring wraparound.
    dropped: AtomicU64,
    /// Flat slot storage, stride 3: `[ts_ns, dur_ns, kind<<32 | name]`.
    slots: Vec<AtomicU64>,
}

impl TraceBuf {
    fn new(pid: u32, tid: u32, label: String, epoch: Instant, capacity: usize) -> Self {
        TraceBuf {
            pid,
            tid,
            label,
            epoch,
            capacity,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity * 3).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Nanoseconds since the owning tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    fn push(&self, ts_ns: u64, dur_ns: u64, kind: u64, name: NameId) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        if i >= self.capacity as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let base = (i as usize % self.capacity) * 3;
        self.slots[base].store(ts_ns, Ordering::Relaxed);
        self.slots[base + 1].store(dur_ns, Ordering::Relaxed);
        self.slots[base + 2].store(kind << 32 | u64::from(name.0), Ordering::Relaxed);
    }

    /// Records a complete span with an explicit start and duration.
    pub fn complete(&self, name: NameId, start_ns: u64, dur_ns: u64) {
        self.push(start_ns, dur_ns, KIND_COMPLETE, name);
    }

    /// Records an instant event at the current time.
    pub fn instant(&self, name: NameId) {
        self.push(self.now_ns(), 0, KIND_INSTANT, name);
    }

    /// Starts a scoped span that records a complete event on drop.
    pub fn span(&self, name: NameId) -> TraceSpan<'_> {
        TraceSpan {
            buf: self,
            name,
            start_ns: self.now_ns(),
        }
    }

    /// Events overwritten by ring wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the resident events in write order:
    /// `(ts_ns, dur_ns, kind, name)`.
    fn events(&self) -> Vec<(u64, u64, u64, u32)> {
        let head = self.head.load(Ordering::Relaxed);
        let n = head.min(self.capacity as u64);
        let first = head - n;
        (first..head)
            .map(|i| {
                let base = (i as usize % self.capacity) * 3;
                let code = self.slots[base + 2].load(Ordering::Relaxed);
                (
                    self.slots[base].load(Ordering::Relaxed),
                    self.slots[base + 1].load(Ordering::Relaxed),
                    code >> 32,
                    code as u32,
                )
            })
            .collect()
    }
}

impl std::fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceBuf(pid {}, tid {}, {} events)",
            self.pid,
            self.tid,
            self.head.load(Ordering::Relaxed)
        )
    }
}

/// A scoped span: records `[creation, drop)` as a complete event.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    buf: &'a TraceBuf,
    name: NameId,
    start_ns: u64,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let end = self.buf.now_ns();
        self.buf
            .complete(self.name, self.start_ns, end.saturating_sub(self.start_ns));
    }
}

/// Interned names plus their lookup index.
#[derive(Default)]
struct NameTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

/// The flight recorder: owns the epoch, the interned name table, the
/// process labels and every per-thread ring buffer.
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    names: Mutex<NameTable>,
    processes: Mutex<Vec<(u32, String)>>,
    buffers: Mutex<Vec<Arc<TraceBuf>>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Creates a tracer with the default per-buffer capacity.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a tracer whose ring buffers hold `capacity` events each.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            names: Mutex::new(NameTable::default()),
            processes: Mutex::new(Vec::new()),
            buffers: Mutex::new(Vec::new()),
        }
    }

    /// Interns a span name (locks a mutex — resolve at wiring time).
    pub fn name(&self, name: &str) -> NameId {
        let mut table = self.names.lock().expect("trace names poisoned");
        if let Some(&id) = table.index.get(name) {
            return NameId(id);
        }
        let id = table.names.len() as u32;
        table.names.push(name.to_owned());
        table.index.insert(name.to_owned(), id);
        NameId(id)
    }

    /// Labels a Chrome-trace "process" (one per pipeline shard).
    pub fn set_process_name(&self, pid: u32, label: &str) {
        let mut procs = self.processes.lock().expect("trace processes poisoned");
        if !procs.iter().any(|(p, _)| *p == pid) {
            procs.push((pid, label.to_owned()));
        }
    }

    /// Creates (and registers for export) a ring buffer for one thread
    /// of process `pid`. The caller must ensure a single writer.
    pub fn thread(&self, pid: u32, tid: u32, label: &str) -> Arc<TraceBuf> {
        let buf = Arc::new(TraceBuf::new(
            pid,
            tid,
            label.to_owned(),
            self.epoch,
            self.capacity,
        ));
        self.buffers
            .lock()
            .expect("trace buffers poisoned")
            .push(Arc::clone(&buf));
        buf
    }

    /// Total events dropped (ring wraparound) across all buffers.
    pub fn total_dropped(&self) -> u64 {
        self.buffers
            .lock()
            .expect("trace buffers poisoned")
            .iter()
            .map(|b| b.dropped())
            .sum()
    }

    /// Exports every buffer as Chrome trace-event JSON (the format
    /// `chrome://tracing` and Perfetto load directly): one `"X"`
    /// complete event per span, one `"i"` event per instant,
    /// `process_name`/`thread_name` metadata per pid/buffer, timestamps
    /// in microseconds since the tracer's epoch.
    pub fn to_chrome_json(&self) -> String {
        let names = self.names.lock().expect("trace names poisoned");
        let processes = self.processes.lock().expect("trace processes poisoned");
        let mut buffers = self.buffers.lock().expect("trace buffers poisoned").clone();
        buffers.sort_by_key(|b| (b.pid, b.tid));

        let mut events: Vec<String> = Vec::new();
        let mut procs_sorted: Vec<&(u32, String)> = processes.iter().collect();
        procs_sorted.sort_by_key(|(p, _)| *p);
        for (pid, label) in procs_sorted {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                crate::json_string(label)
            ));
        }
        for buf in &buffers {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                buf.pid,
                buf.tid,
                crate::json_string(&buf.label)
            ));
        }
        for buf in &buffers {
            for (ts_ns, dur_ns, kind, name) in buf.events() {
                let name = names
                    .names
                    .get(name as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                let common = format!(
                    "\"pid\":{},\"tid\":{},\"cat\":\"cwa\",\"name\":{},\"ts\":{}",
                    buf.pid,
                    buf.tid,
                    crate::json_string(name),
                    micros(ts_ns),
                );
                events.push(if kind == KIND_COMPLETE {
                    format!("{{\"ph\":\"X\",{common},\"dur\":{}}}", micros(dur_ns))
                } else {
                    format!("{{\"ph\":\"i\",{common},\"s\":\"t\"}}")
                });
            }
        }

        let dropped: u64 = buffers.iter().map(|b| b.dropped()).sum();
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"cwa-trace/v1\",\
             \"dropped_events\":{dropped}}},\"traceEvents\":[\n{}\n]}}\n",
            events.join(",\n")
        )
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buffers = self.buffers.lock().expect("trace buffers poisoned");
        write!(f, "Tracer({} buffers)", buffers.len())
    }
}

/// Formats nanoseconds as a microsecond decimal (Chrome's `ts` unit).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Coalesced per-stage self-time for record-granularity consumers.
///
/// Filtering and analyzing happen *per record* — far too hot to emit a
/// trace event each. A `StageLog` instead accumulates per-stage busy
/// nanoseconds and, at every checkpoint (an export-hour boundary, see
/// `FlowSink::checkpoint` in `cwa-netflow`), emits one synthetic span
/// per stage laid out back-to-back ending at the checkpoint: a `filter`
/// span, then an `analyze` span containing one child span per consumer.
/// Self-times are exact; only the within-hour interleaving is
/// synthesized.
pub struct StageLog {
    buf: Arc<TraceBuf>,
    filter: NameId,
    analyze: NameId,
    stages: Vec<(NameId, u64)>,
    filter_ns: u64,
}

impl StageLog {
    /// Creates a stage log emitting into `buf` with one child stage per
    /// name in `stage_names`.
    pub fn new(tracer: &Tracer, buf: Arc<TraceBuf>, stage_names: &[&str]) -> Self {
        StageLog {
            filter: tracer.name("filter"),
            analyze: tracer.name("analyze"),
            stages: stage_names.iter().map(|n| (tracer.name(n), 0)).collect(),
            buf,
            filter_ns: 0,
        }
    }

    /// Nanoseconds since the tracer's epoch (for caller-side timing).
    pub fn now_ns(&self) -> u64 {
        self.buf.now_ns()
    }

    /// Accumulates filter busy time.
    pub fn add_filter(&mut self, ns: u64) {
        self.filter_ns += ns;
    }

    /// Accumulates stage `i`'s busy time (registration order).
    pub fn add_stage(&mut self, i: usize, ns: u64) {
        if let Some((_, acc)) = self.stages.get_mut(i) {
            *acc += ns;
        }
    }

    /// Emits the accumulated stage spans ending now and resets the
    /// accumulators. No-op when nothing accumulated.
    pub fn flush(&mut self) {
        let analyze_ns: u64 = self.stages.iter().map(|(_, ns)| ns).sum();
        let total = self.filter_ns + analyze_ns;
        if total == 0 {
            return;
        }
        let end = self.buf.now_ns();
        let mut t = end.saturating_sub(total);
        self.buf.complete(self.filter, t, self.filter_ns);
        t += self.filter_ns;
        self.buf.complete(self.analyze, t, analyze_ns);
        for (name, ns) in &mut self.stages {
            self.buf.complete(*name, t, *ns);
            t += *ns;
            *ns = 0;
        }
        self.filter_ns = 0;
    }
}

impl std::fmt::Debug for StageLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StageLog({} stages)", self.stages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_are_recorded() {
        let tracer = Tracer::new();
        let buf = tracer.thread(1, 1, "worker");
        let produce = tracer.name("produce");
        let tick = tracer.name("tick");
        {
            let _span = buf.span(produce);
            std::hint::black_box(0u64);
        }
        buf.instant(tick);
        buf.complete(produce, 100, 50);
        let events = buf.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].2, KIND_COMPLETE);
        assert_eq!(events[1].2, KIND_INSTANT);
        assert_eq!(events[2], (100, 50, KIND_COMPLETE, produce.0));
    }

    #[test]
    fn name_interning_is_stable() {
        let tracer = Tracer::new();
        let a = tracer.name("alpha");
        let b = tracer.name("beta");
        assert_ne!(a, b);
        assert_eq!(tracer.name("alpha"), a);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Tracer::with_capacity(4);
        let buf = tracer.thread(0, 0, "t");
        let n = tracer.name("e");
        for i in 0..10u64 {
            buf.complete(n, i, 1);
        }
        assert_eq!(buf.dropped(), 6);
        assert_eq!(tracer.total_dropped(), 6);
        let events = buf.events();
        assert_eq!(events.len(), 4);
        // The four *newest* events survive, in order.
        assert_eq!(
            events.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let tracer = Tracer::new();
        tracer.set_process_name(1, "shard00");
        let buf = tracer.thread(1, 1, "worker");
        let produce = tracer.name("produce");
        buf.complete(produce, 1_500, 2_250);
        buf.instant(tracer.name("drain\"quote"));

        let json = tracer.to_chrome_json();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid chrome trace JSON");
        let field = |v: &serde_json::Value, k: &str| v.get(k).expect(k).clone();
        let events = field(&doc, "traceEvents")
            .as_array()
            .expect("traceEvents array")
            .to_vec();
        // process_name + thread_name metadata + two events.
        assert_eq!(events.len(), 4);
        assert_eq!(field(&events[0], "ph").as_str(), Some("M"));
        assert_eq!(
            field(&field(&events[0], "args"), "name").as_str(),
            Some("shard00")
        );
        let span = &events[2];
        assert_eq!(field(span, "ph").as_str(), Some("X"));
        assert_eq!(field(span, "name").as_str(), Some("produce"));
        let num = |v: &serde_json::Value, k: &str| match field(v, k) {
            serde_json::Value::Num(n) => n.as_f64(),
            other => panic!("{k} not a number: {other:?}"),
        };
        assert_eq!(num(span, "ts"), 1.5);
        assert_eq!(num(span, "dur"), 2.25);
        assert_eq!(num(&field(&doc, "otherData"), "dropped_events"), 0.0);
        assert_eq!(field(&events[3], "name").as_str(), Some("drain\"quote"));
    }

    #[test]
    fn concurrent_writers_use_private_buffers() {
        let tracer = Arc::new(Tracer::new());
        crossbeam::thread::scope(|s| {
            for w in 0..4u32 {
                let t = Arc::clone(&tracer);
                s.spawn(move |_| {
                    let buf = t.thread(w, 1, "worker");
                    let n = t.name("work");
                    for i in 0..1000 {
                        buf.complete(n, i, 1);
                    }
                });
            }
        })
        .expect("no worker panicked");
        let json = tracer.to_chrome_json();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        // 4 thread_name metadata + 4000 events.
        assert_eq!(
            doc.get("traceEvents").unwrap().as_array().unwrap().len(),
            4004
        );
    }

    #[test]
    fn stage_log_emits_back_to_back_spans() {
        let tracer = Tracer::new();
        let buf = tracer.thread(2, 2, "analysis");
        let mut log = StageLog::new(&tracer, Arc::clone(&buf), &["timeseries", "geoloc"]);
        log.flush();
        assert_eq!(buf.events().len(), 0, "empty flush emits nothing");

        log.add_filter(1_000);
        log.add_stage(0, 2_000);
        log.add_stage(1, 3_000);
        log.flush();
        let events = buf.events();
        // filter + analyze + 2 stages.
        assert_eq!(events.len(), 4);
        let (filter, analyze, ts, geo) = (events[0], events[1], events[2], events[3]);
        assert_eq!(filter.1, 1_000);
        assert_eq!(analyze.1, 5_000);
        assert_eq!(ts.1, 2_000);
        assert_eq!(geo.1, 3_000);
        // Back-to-back layout: filter ends where analyze begins; the
        // stage children tile the analyze span exactly.
        assert_eq!(filter.0 + filter.1, analyze.0);
        assert_eq!(ts.0, analyze.0);
        assert_eq!(ts.0 + ts.1, geo.0);
        assert_eq!(geo.0 + geo.1, analyze.0 + analyze.1);

        // Accumulators reset after flush.
        log.flush();
        assert_eq!(buf.events().len(), 4);
    }
}
