//! # cwa-exposure — the Google/Apple Exposure Notification protocol
//!
//! A from-scratch implementation of the decentralized, privacy-preserving
//! contact-tracing protocol (DP-3T lineage) that the Corona-Warn-App is
//! built on, following the *Exposure Notification Cryptography
//! Specification v1.2* (April 2020) and the corresponding Bluetooth and
//! key-export specifications:
//!
//! * [`time`] — 10-minute **interval numbers** and the 144-interval
//!   (24 h) TEK rolling period.
//! * [`tek`] — **Temporary Exposure Keys** and the key schedule:
//!   `RPIK = HKDF(tek, "EN-RPIK")`, `AEMK = HKDF(tek, "EN-AEMK")`,
//!   `RPI_j = AES128(RPIK, "EN-RPI" ‖ pad ‖ ENIN_j)`,
//!   `AEM = AES128-CTR(AEMK, RPI, metadata)`.
//! * [`advertisement`] — the BLE advertisement payload (service UUID
//!   0xFD6F, 16-byte RPI + 4-byte AEM).
//! * [`protobuf`] — a hand-rolled protobuf wire-format codec (varints,
//!   length-delimited fields), since no protobuf crate is available
//!   offline.
//! * [`export`] — the `TemporaryExposureKeyExport` diagnosis-key file
//!   format served by the CWA CDN (the very payload whose downloads the
//!   paper's NetFlow traces contain), including the 16-byte
//!   `"EK Export v1"` header.
//! * [`matching`] — the on-phone matching engine: deriving all RPIs of
//!   downloaded diagnosis keys and intersecting them with the local
//!   encounter history.
//! * [`risk`] — the v1 exposure risk scoring model (attenuation /
//!   days-since-exposure / duration / transmission-risk buckets).
//! * [`risk_v2`] — the ENF v2 "exposure windows" model (weighted
//!   minutes) the CWA migrated to after the study — the reproduction's
//!   extension feature.
//! * [`contact`] — BLE path-loss physics (distance → attenuation) and a
//!   co-location simulator driving two devices' radio loops.
//! * [`device`] — a complete simulated phone: rolls TEKs daily,
//!   advertises, scans, stores encounters for 14 days, uploads diagnosis
//!   keys, downloads and matches key exports.
//! * [`signature`] — the export.bin/export.sig pair: ECDSA-P256-signed
//!   exports with pinned-key verification, as on the real CDN.
//! * [`federation`] — EFGS-style cross-border key federation (the
//!   system's next evolutionary step after the study window).
//! * [`verification`] — the health-authority verification server
//!   (teleTAN → registration token → upload TAN) that gates every key
//!   upload, with the hotline rate limit behind the paper's June-23
//!   first-keys observation.
//!
//! Role in the reproduction: the paper measures the *network traffic* this
//! protocol causes (daily diagnosis-key downloads from the CDN, §1 and
//! Fig. 1). This crate provides the faithful app-side behaviour that the
//! `cwa-simnet` traffic model and the end-to-end examples build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advertisement;
pub mod contact;
pub mod device;
pub mod export;
pub mod federation;
pub mod matching;
pub mod protobuf;
pub mod risk;
pub mod risk_v2;
pub mod signature;
pub mod tek;
pub mod time;
pub mod verification;

pub use advertisement::BleAdvertisement;
pub use contact::{Encounter, PathLossModel};
pub use device::Device;
pub use export::TemporaryExposureKeyExport;
pub use federation::{CountryCode, FederationGateway};
pub use matching::{ExposureMatch, MatchingEngine};
pub use risk::{ExposureConfiguration, RiskScore};
pub use risk_v2::{ExposureWindow, RiskConfigV2, RiskLevelV2};
pub use signature::{sign_export, verify_export, SignedExport};
pub use tek::{DiagnosisKey, RollingProximityIdentifier, TemporaryExposureKey};
pub use time::{EnIntervalNumber, TEK_ROLLING_PERIOD};
pub use verification::VerificationServer;
