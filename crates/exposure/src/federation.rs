//! Cross-border key federation (EFGS-style).
//!
//! The paper studies the CWA's first ten days, when diagnosis keys
//! stayed national. The *European Federation Gateway Service* that went
//! live a few months later lets national backends exchange keys so that
//! cross-border contacts are traced too — the natural "future work" of
//! the measured system, modelled here:
//!
//! * national backends **upload** their daily diagnosis keys tagged with
//!   origin country and the countries the patient visited,
//! * the gateway **deduplicates** (the same TEK must never be
//!   distributed twice) and batches keys per day,
//! * each backend **downloads** the keys *relevant* to it — those whose
//!   visited-country set includes it — and merges them into its national
//!   export file (the file whose downloads the paper measures; a
//!   federated world makes that file strictly larger).

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use cwa_crypto::sha256;

use crate::export::TemporaryExposureKeyExport;
use crate::tek::DiagnosisKey;

/// ISO-3166-alpha-2-style country code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Builds a code from a 2-letter string.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not exactly 2 ASCII letters.
    pub fn new(s: &str) -> Self {
        let bytes = s.as_bytes();
        assert!(
            bytes.len() == 2 && bytes.iter().all(|b| b.is_ascii_alphabetic()),
            "country code must be 2 ASCII letters"
        );
        CountryCode([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a string.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("ascii letters")
    }
}

/// One federated key: a diagnosis key plus routing metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedKey {
    /// The diagnosis key.
    pub key: DiagnosisKey,
    /// Country whose backend uploaded the key.
    pub origin: CountryCode,
    /// Countries the patient reported visiting (relevance routing).
    pub visited: Vec<CountryCode>,
}

/// Upload outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UploadReceipt {
    /// Keys accepted into the day's batch.
    pub accepted: usize,
    /// Keys rejected as duplicates.
    pub duplicates: usize,
}

/// The federation gateway.
#[derive(Debug, Default)]
pub struct FederationGateway {
    batches: BTreeMap<u32, Vec<FederatedKey>>,
    seen: HashSet<[u8; 16]>,
}

impl FederationGateway {
    /// Creates an empty gateway.
    pub fn new() -> Self {
        Self::default()
    }

    /// A national backend uploads its day's keys.
    pub fn upload(&mut self, day: u32, keys: Vec<FederatedKey>) -> UploadReceipt {
        let mut accepted = 0;
        let mut duplicates = 0;
        let batch = self.batches.entry(day).or_default();
        for fk in keys {
            if self.seen.insert(fk.key.tek.key) {
                batch.push(fk);
                accepted += 1;
            } else {
                duplicates += 1;
            }
        }
        UploadReceipt {
            accepted,
            duplicates,
        }
    }

    /// A national backend downloads the keys relevant to `country` for
    /// `day`: keys uploaded by others whose visited set includes it.
    pub fn download(&self, day: u32, country: CountryCode) -> Vec<FederatedKey> {
        self.batches
            .get(&day)
            .map(|batch| {
                batch
                    .iter()
                    .filter(|fk| fk.origin != country && fk.visited.contains(&country))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// A content-addressed tag over the day's batch (the gateway signs
    /// batches in the real system; the tag is the stand-in integrity
    /// anchor).
    pub fn batch_tag(&self, day: u32) -> Option<[u8; 32]> {
        self.batches.get(&day).map(|batch| {
            let mut buf = Vec::with_capacity(batch.len() * 20);
            for fk in batch {
                buf.extend_from_slice(&fk.key.tek.key);
                buf.extend_from_slice(&fk.origin.0);
            }
            sha256(&buf)
        })
    }

    /// Total distinct keys ever accepted.
    pub fn total_keys(&self) -> usize {
        self.seen.len()
    }

    /// Days with batches.
    pub fn days(&self) -> Vec<u32> {
        self.batches.keys().copied().collect()
    }
}

/// Merges a national key set with federated downloads into the national
/// export file (the artifact the CWA CDN serves).
pub fn merge_into_export(
    national: Vec<DiagnosisKey>,
    federated: &[FederatedKey],
    start_timestamp: u64,
    end_timestamp: u64,
) -> TemporaryExposureKeyExport {
    let mut keys = national;
    let mut present: HashSet<[u8; 16]> = keys.iter().map(|k| k.tek.key).collect();
    for fk in federated {
        if present.insert(fk.key.tek.key) {
            keys.push(fk.key);
        }
    }
    TemporaryExposureKeyExport::new_de(start_timestamp, end_timestamp, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tek::TemporaryExposureKey;
    use crate::time::EnIntervalNumber;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn keys(rng: &mut ChaCha8Rng, n: usize) -> Vec<DiagnosisKey> {
        (0..n)
            .map(|_| {
                DiagnosisKey::new(
                    TemporaryExposureKey::generate(rng, EnIntervalNumber(144 * 18_400)),
                    5,
                )
            })
            .collect()
    }

    fn fed(keys: Vec<DiagnosisKey>, origin: &str, visited: &[&str]) -> Vec<FederatedKey> {
        keys.into_iter()
            .map(|key| FederatedKey {
                key,
                origin: CountryCode::new(origin),
                visited: visited.iter().map(|c| CountryCode::new(c)).collect(),
            })
            .collect()
    }

    #[test]
    fn country_code_normalization() {
        assert_eq!(CountryCode::new("de"), CountryCode::new("DE"));
        assert_eq!(CountryCode::new("de").as_str(), "DE");
    }

    #[test]
    #[should_panic(expected = "2 ASCII letters")]
    fn bad_country_code() {
        let _ = CountryCode::new("DEU");
    }

    #[test]
    fn upload_download_relevance() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut gw = FederationGateway::new();
        // Italy uploads keys from patients who visited DE and AT.
        let it_keys = fed(keys(&mut rng, 5), "IT", &["DE", "AT"]);
        // France uploads keys relevant only to ES.
        let fr_keys = fed(keys(&mut rng, 3), "FR", &["ES"]);
        gw.upload(8, it_keys);
        gw.upload(8, fr_keys);

        let de = gw.download(8, CountryCode::new("DE"));
        assert_eq!(de.len(), 5, "DE sees the Italian keys");
        let es = gw.download(8, CountryCode::new("ES"));
        assert_eq!(es.len(), 3);
        let pl = gw.download(8, CountryCode::new("PL"));
        assert!(pl.is_empty());
    }

    #[test]
    fn origin_country_excluded_from_its_own_download() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut gw = FederationGateway::new();
        // DE uploads keys that also list DE as visited (home country).
        gw.upload(3, fed(keys(&mut rng, 4), "DE", &["DE", "NL"]));
        assert!(gw.download(3, CountryCode::new("DE")).is_empty(), "no echo");
        assert_eq!(gw.download(3, CountryCode::new("NL")).len(), 4);
    }

    #[test]
    fn duplicate_uploads_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut gw = FederationGateway::new();
        let ks = keys(&mut rng, 6);
        let r1 = gw.upload(1, fed(ks.clone(), "IT", &["DE"]));
        assert_eq!(r1.accepted, 6);
        assert_eq!(r1.duplicates, 0);
        // Re-upload (e.g. retry after timeout): all duplicates.
        let r2 = gw.upload(1, fed(ks, "IT", &["DE"]));
        assert_eq!(r2.accepted, 0);
        assert_eq!(r2.duplicates, 6);
        assert_eq!(gw.total_keys(), 6);
    }

    #[test]
    fn batch_tags_change_with_content() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut gw = FederationGateway::new();
        gw.upload(1, fed(keys(&mut rng, 2), "IT", &["DE"]));
        let t1 = gw.batch_tag(1).unwrap();
        gw.upload(1, fed(keys(&mut rng, 1), "FR", &["DE"]));
        let t2 = gw.batch_tag(1).unwrap();
        assert_ne!(t1, t2);
        assert!(gw.batch_tag(9).is_none());
    }

    #[test]
    fn merge_into_export_dedups_and_roundtrips() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let national = keys(&mut rng, 10);
        // One federated key collides with a national one.
        let mut federated = fed(keys(&mut rng, 4), "AT", &["DE"]);
        federated.push(FederatedKey {
            key: national[0],
            origin: CountryCode::new("AT"),
            visited: vec![CountryCode::new("DE")],
        });
        let export = merge_into_export(national, &federated, 0, 86_400);
        assert_eq!(export.keys.len(), 14, "10 national + 4 new federated");
        let back = TemporaryExposureKeyExport::decode(&export.encode()).unwrap();
        assert_eq!(back.keys.len(), 14);
    }

    #[test]
    fn federation_grows_the_daily_download() {
        // The paper-era export vs a federated one: strictly larger file,
        // i.e. more bytes per app download at the vantage point.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let national = keys(&mut rng, 20);
        let national_only = merge_into_export(national.clone(), &[], 0, 86_400).encoded_len();
        let federated = fed(keys(&mut rng, 15), "IT", &["DE"]);
        let with_federation = merge_into_export(national, &federated, 0, 86_400).encoded_len();
        assert!(with_federation > national_only);
    }
}
