//! Minimal protobuf wire-format codec.
//!
//! The official diagnosis-key file distributed by the CWA CDN is a
//! protobuf-encoded `TemporaryExposureKeyExport`. No protobuf crate is
//! available in the offline dependency set, so this module implements the
//! subset of the wire format the export format needs:
//!
//! * base-128 **varints** (wire type 0),
//! * **64-bit fixed** fields (wire type 1),
//! * **length-delimited** fields — bytes / strings / sub-messages
//!   (wire type 2).
//!
//! Reference: <https://protobuf.dev/programming-guides/encoding/>.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protobuf wire types used by the export format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Wire type 0: varint.
    Varint,
    /// Wire type 1: 64-bit fixed.
    Fixed64,
    /// Wire type 2: length-delimited.
    LengthDelimited,
}

impl WireType {
    /// The 3-bit wire-type code.
    pub fn code(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::LengthDelimited => 2,
        }
    }

    /// Parses a wire-type code.
    pub fn from_code(code: u64) -> Result<Self, DecodeError> {
        match code {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            other => Err(DecodeError::UnsupportedWireType(other as u8)),
        }
    }
}

/// Errors raised while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A varint ran longer than 10 bytes.
    VarintTooLong,
    /// Encountered a wire type this codec does not implement.
    UnsupportedWireType(u8),
    /// A length-delimited field promised more bytes than remain.
    LengthOverrun,
    /// A field had an invalid value for its declared meaning.
    InvalidField(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::VarintTooLong => write!(f, "varint longer than 10 bytes"),
            DecodeError::UnsupportedWireType(t) => write!(f, "unsupported wire type {t}"),
            DecodeError::LengthOverrun => write!(f, "length-delimited field overruns input"),
            DecodeError::InvalidField(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Streaming protobuf writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::new(),
        }
    }

    /// Writes a raw varint.
    pub fn varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.put_u8(byte);
                break;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes a field tag (field number + wire type).
    pub fn tag(&mut self, field: u32, wire: WireType) {
        self.varint((u64::from(field) << 3) | wire.code());
    }

    /// Writes a varint field.
    pub fn field_varint(&mut self, field: u32, value: u64) {
        self.tag(field, WireType::Varint);
        self.varint(value);
    }

    /// Writes an `int32` field (negative values use 10-byte
    /// twos-complement varints, per the spec).
    pub fn field_int32(&mut self, field: u32, value: i32) {
        self.field_varint(field, value as i64 as u64);
    }

    /// Writes a fixed64 field.
    pub fn field_fixed64(&mut self, field: u32, value: u64) {
        self.tag(field, WireType::Fixed64);
        self.buf.put_u64_le(value);
    }

    /// Writes a length-delimited bytes field.
    pub fn field_bytes(&mut self, field: u32, value: &[u8]) {
        self.tag(field, WireType::LengthDelimited);
        self.varint(value.len() as u64);
        self.buf.put_slice(value);
    }

    /// Writes a string field.
    pub fn field_string(&mut self, field: u32, value: &str) {
        self.field_bytes(field, value.as_bytes());
    }

    /// Writes an embedded message field.
    pub fn field_message(&mut self, field: u32, message: &Writer) {
        self.field_bytes(field, &message.buf);
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A single decoded field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// Wire type 0.
    Varint(u64),
    /// Wire type 1.
    Fixed64(u64),
    /// Wire type 2.
    Bytes(Bytes),
}

impl FieldValue {
    /// Interprets the value as a varint.
    pub fn as_varint(&self) -> Result<u64, DecodeError> {
        match self {
            FieldValue::Varint(v) => Ok(*v),
            _ => Err(DecodeError::InvalidField("expected varint")),
        }
    }

    /// Interprets the value as fixed64.
    pub fn as_fixed64(&self) -> Result<u64, DecodeError> {
        match self {
            FieldValue::Fixed64(v) => Ok(*v),
            _ => Err(DecodeError::InvalidField("expected fixed64")),
        }
    }

    /// Interprets the value as bytes.
    pub fn as_bytes(&self) -> Result<&Bytes, DecodeError> {
        match self {
            FieldValue::Bytes(b) => Ok(b),
            _ => Err(DecodeError::InvalidField("expected length-delimited")),
        }
    }

    /// Interprets the value as an `int32`.
    pub fn as_int32(&self) -> Result<i32, DecodeError> {
        Ok(self.as_varint()? as i64 as i32)
    }
}

/// Streaming protobuf reader over a byte slice.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Wraps `data` for reading.
    pub fn new(data: Bytes) -> Self {
        Reader { buf: data }
    }

    /// True if all input has been consumed.
    pub fn is_done(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reads a raw varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            if self.buf.is_empty() {
                return Err(DecodeError::UnexpectedEof);
            }
            let byte = self.buf.get_u8();
            if shift >= 64 {
                return Err(DecodeError::VarintTooLong);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads the next field: `(field_number, value)`.
    pub fn field(&mut self) -> Result<(u32, FieldValue), DecodeError> {
        let key = self.varint()?;
        let field = (key >> 3) as u32;
        let wire = WireType::from_code(key & 0x7)?;
        let value = match wire {
            WireType::Varint => FieldValue::Varint(self.varint()?),
            WireType::Fixed64 => {
                if self.buf.len() < 8 {
                    return Err(DecodeError::UnexpectedEof);
                }
                FieldValue::Fixed64(self.buf.get_u64_le())
            }
            WireType::LengthDelimited => {
                let len = self.varint()? as usize;
                if self.buf.len() < len {
                    return Err(DecodeError::LengthOverrun);
                }
                FieldValue::Bytes(self.buf.split_to(len))
            }
        };
        Ok((field, value))
    }

    /// Reads all remaining fields.
    pub fn all_fields(&mut self) -> Result<Vec<(u32, FieldValue)>, DecodeError> {
        let mut out = Vec::new();
        while !self.is_done() {
            out.push(self.field()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_known_encodings() {
        // protobuf.dev examples: 1 -> 0x01, 150 -> 0x96 0x01.
        let mut w = Writer::new();
        w.varint(1);
        assert_eq!(&w.finish()[..], &[0x01]);

        let mut w = Writer::new();
        w.varint(150);
        assert_eq!(&w.finish()[..], &[0x96, 0x01]);

        let mut w = Writer::new();
        w.varint(u64::MAX);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 10);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 21, 1 << 35, u64::MAX] {
            let mut w = Writer::new();
            w.varint(v);
            let mut r = Reader::new(w.finish());
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_done());
        }
    }

    #[test]
    fn field_150_example() {
        // The canonical protobuf example: field 1 varint 150 -> 08 96 01.
        let mut w = Writer::new();
        w.field_varint(1, 150);
        assert_eq!(&w.finish()[..], &[0x08, 0x96, 0x01]);
    }

    #[test]
    fn string_field_example() {
        // field 2 string "testing" -> 12 07 74 65 73 74 69 6e 67.
        let mut w = Writer::new();
        w.field_string(2, "testing");
        assert_eq!(
            &w.finish()[..],
            &[0x12, 0x07, 0x74, 0x65, 0x73, 0x74, 0x69, 0x6e, 0x67]
        );
    }

    #[test]
    fn negative_int32_uses_ten_bytes() {
        let mut w = Writer::new();
        w.field_int32(4, -1);
        let bytes = w.finish();
        // tag(1) + 10 varint bytes.
        assert_eq!(bytes.len(), 11);
        let mut r = Reader::new(bytes);
        let (f, v) = r.field().unwrap();
        assert_eq!(f, 4);
        assert_eq!(v.as_int32().unwrap(), -1);
    }

    #[test]
    fn fixed64_roundtrip() {
        let mut w = Writer::new();
        w.field_fixed64(1, 0x0102_0304_0506_0708);
        let mut r = Reader::new(w.finish());
        let (f, v) = r.field().unwrap();
        assert_eq!(f, 1);
        assert_eq!(v.as_fixed64().unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn nested_message() {
        let mut inner = Writer::new();
        inner.field_bytes(1, b"keydata");
        inner.field_int32(3, 2_650_000);

        let mut outer = Writer::new();
        outer.field_message(7, &inner);

        let mut r = Reader::new(outer.finish());
        let (f, v) = r.field().unwrap();
        assert_eq!(f, 7);
        let mut inner_r = Reader::new(v.as_bytes().unwrap().clone());
        let fields = inner_r.all_fields().unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].1.as_bytes().unwrap().as_ref(), b"keydata");
        assert_eq!(fields[1].1.as_int32().unwrap(), 2_650_000);
    }

    #[test]
    fn decode_errors() {
        // Truncated varint.
        let mut r = Reader::new(Bytes::from_static(&[0x80]));
        assert_eq!(r.varint(), Err(DecodeError::UnexpectedEof));

        // Length overrun.
        let mut r = Reader::new(Bytes::from_static(&[0x12, 0x7f, 0x01]));
        assert_eq!(r.field().unwrap_err(), DecodeError::LengthOverrun);

        // Unsupported wire type (3 = start group).
        let mut r = Reader::new(Bytes::from_static(&[0x0b]));
        assert_eq!(r.field().unwrap_err(), DecodeError::UnsupportedWireType(3));

        // Truncated fixed64.
        let mut r = Reader::new(Bytes::from_static(&[0x09, 1, 2, 3]));
        assert_eq!(r.field().unwrap_err(), DecodeError::UnexpectedEof);
    }

    #[test]
    fn varint_too_long() {
        let bytes = vec![0xffu8; 11];
        let mut r = Reader::new(Bytes::from(bytes));
        assert_eq!(r.varint(), Err(DecodeError::VarintTooLong));
    }
}
