//! The health-authority verification flow (the "verified by health
//! authorities" arrow in Figure 1 of the paper).
//!
//! The real CWA never lets a phone publish diagnosis keys directly: the
//! upload must carry a TAN minted by the **verification server**, which
//! in turn requires proof of a positive test. In June 2020 that proof
//! was, in practice, a **teleTAN** issued over a hotline (the lab-QR
//! flow came later) — whose limited throughput is exactly why the first
//! diagnosis keys only appeared on the CDN on June 23 (§1).
//!
//! State machine per case:
//!
//! ```text
//! teleTAN  ──register──▶  RegistrationToken  ──request──▶  UploadTan
//!  (one-shot, 1 h TTL)     (14 d TTL)                      (one-shot, 1 h TTL)
//! ```
//!
//! The server stores only salted hashes of secrets, enforces TTLs and
//! single-use semantics, and rate-limits teleTAN minting (the hotline
//! capacity) — the knob the upload pipeline's verification ramp models
//! at population scale.

use std::collections::HashMap;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use cwa_crypto::sha256;

/// Seconds a teleTAN stays redeemable.
pub const TELETAN_TTL_S: u64 = 3600;
/// Seconds a registration token stays valid.
pub const REGISTRATION_TOKEN_TTL_S: u64 = 14 * 86_400;
/// Seconds an upload TAN stays redeemable.
pub const UPLOAD_TAN_TTL_S: u64 = 3600;

/// A human-transcribable teleTAN (10 chars, hotline-issued).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TeleTan(pub String);

/// An opaque registration token held by the app.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegistrationToken(pub [u8; 16]);

/// The one-shot TAN authorizing a key upload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UploadTan(pub [u8; 16]);

/// Verification-flow errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationError {
    /// The teleTAN is unknown, already used, or expired.
    InvalidTeleTan,
    /// The registration token is unknown or expired.
    InvalidRegistrationToken,
    /// The upload TAN is unknown, already used, or expired.
    InvalidUploadTan,
    /// Hotline capacity for this time window is exhausted.
    RateLimited,
}

impl std::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerificationError::InvalidTeleTan => write!(f, "invalid or expired teleTAN"),
            VerificationError::InvalidRegistrationToken => {
                write!(f, "invalid or expired registration token")
            }
            VerificationError::InvalidUploadTan => write!(f, "invalid or expired upload TAN"),
            VerificationError::RateLimited => write!(f, "hotline capacity exhausted"),
        }
    }
}

impl std::error::Error for VerificationError {}

#[derive(Debug, Clone, Copy)]
struct Pending {
    issued_at: u64,
    used: bool,
}

/// The verification server.
pub struct VerificationServer {
    /// Salt mixed into every stored hash.
    salt: [u8; 16],
    teletans: HashMap<[u8; 32], Pending>,
    registration_tokens: HashMap<[u8; 32], Pending>,
    upload_tans: HashMap<[u8; 32], Pending>,
    /// Hotline capacity: teleTANs per day.
    pub teletans_per_day: u32,
    minted_today: (u64, u32),
}

impl VerificationServer {
    /// Creates a server with the given hotline capacity.
    pub fn new<R: RngCore>(rng: &mut R, teletans_per_day: u32) -> Self {
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        VerificationServer {
            salt,
            teletans: HashMap::new(),
            registration_tokens: HashMap::new(),
            upload_tans: HashMap::new(),
            teletans_per_day,
            minted_today: (0, 0),
        }
    }

    fn hash(&self, data: &[u8]) -> [u8; 32] {
        let mut buf = Vec::with_capacity(16 + data.len());
        buf.extend_from_slice(&self.salt);
        buf.extend_from_slice(data);
        sha256(&buf)
    }

    /// Hotline staff mint a teleTAN for a verified positive case.
    pub fn mint_teletan<R: RngCore>(
        &mut self,
        rng: &mut R,
        now: u64,
    ) -> Result<TeleTan, VerificationError> {
        let day = now / 86_400;
        if self.minted_today.0 != day {
            self.minted_today = (day, 0);
        }
        if self.minted_today.1 >= self.teletans_per_day {
            return Err(VerificationError::RateLimited);
        }
        self.minted_today.1 += 1;

        // 10 chars from an unambiguous alphabet (no 0/O, 1/I…).
        const ALPHABET: &[u8] = b"23456789ABCDEFGHJKMNPQRSTUVWXYZ";
        let tan: String = (0..10)
            .map(|_| ALPHABET[(rng.next_u32() as usize) % ALPHABET.len()] as char)
            .collect();
        let key = self.hash(tan.as_bytes());
        self.teletans.insert(
            key,
            Pending {
                issued_at: now,
                used: false,
            },
        );
        Ok(TeleTan(tan))
    }

    /// The app redeems a teleTAN for a registration token.
    pub fn register<R: RngCore>(
        &mut self,
        rng: &mut R,
        teletan: &TeleTan,
        now: u64,
    ) -> Result<RegistrationToken, VerificationError> {
        let key = self.hash(teletan.0.as_bytes());
        let entry = self
            .teletans
            .get_mut(&key)
            .ok_or(VerificationError::InvalidTeleTan)?;
        if entry.used || now.saturating_sub(entry.issued_at) > TELETAN_TTL_S {
            return Err(VerificationError::InvalidTeleTan);
        }
        entry.used = true;

        let mut token = [0u8; 16];
        rng.fill_bytes(&mut token);
        let token_key = self.hash(&token);
        self.registration_tokens.insert(
            token_key,
            Pending {
                issued_at: now,
                used: false,
            },
        );
        Ok(RegistrationToken(token))
    }

    /// The app exchanges its registration token for the upload TAN.
    pub fn request_upload_tan<R: RngCore>(
        &mut self,
        rng: &mut R,
        token: &RegistrationToken,
        now: u64,
    ) -> Result<UploadTan, VerificationError> {
        let key = self.hash(&token.0);
        let entry = self
            .registration_tokens
            .get_mut(&key)
            .ok_or(VerificationError::InvalidRegistrationToken)?;
        if entry.used || now.saturating_sub(entry.issued_at) > REGISTRATION_TOKEN_TTL_S {
            return Err(VerificationError::InvalidRegistrationToken);
        }
        entry.used = true;

        let mut tan = [0u8; 16];
        rng.fill_bytes(&mut tan);
        let tan_key = self.hash(&tan);
        self.upload_tans.insert(
            tan_key,
            Pending {
                issued_at: now,
                used: false,
            },
        );
        Ok(UploadTan(tan))
    }

    /// The submission service validates (and consumes) an upload TAN.
    pub fn redeem_upload_tan(
        &mut self,
        tan: &UploadTan,
        now: u64,
    ) -> Result<(), VerificationError> {
        let key = self.hash(&tan.0);
        let entry = self
            .upload_tans
            .get_mut(&key)
            .ok_or(VerificationError::InvalidUploadTan)?;
        if entry.used || now.saturating_sub(entry.issued_at) > UPLOAD_TAN_TTL_S {
            return Err(VerificationError::InvalidUploadTan);
        }
        entry.used = true;
        Ok(())
    }

    /// teleTANs minted in the current day window.
    pub fn minted_today(&self, now: u64) -> u32 {
        if self.minted_today.0 == now / 86_400 {
            self.minted_today.1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn server(capacity: u32) -> (VerificationServer, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let server = VerificationServer::new(&mut rng, capacity);
        (server, rng)
    }

    #[test]
    fn happy_path() {
        let (mut s, mut rng) = server(100);
        let tele = s.mint_teletan(&mut rng, 1000).unwrap();
        assert_eq!(tele.0.len(), 10);
        let token = s.register(&mut rng, &tele, 1200).unwrap();
        let tan = s.request_upload_tan(&mut rng, &token, 1400).unwrap();
        assert_eq!(s.redeem_upload_tan(&tan, 1500), Ok(()));
    }

    #[test]
    fn teletan_single_use() {
        let (mut s, mut rng) = server(100);
        let tele = s.mint_teletan(&mut rng, 0).unwrap();
        s.register(&mut rng, &tele, 10).unwrap();
        assert_eq!(
            s.register(&mut rng, &tele, 20),
            Err(VerificationError::InvalidTeleTan)
        );
    }

    #[test]
    fn teletan_expires() {
        let (mut s, mut rng) = server(100);
        let tele = s.mint_teletan(&mut rng, 0).unwrap();
        assert_eq!(
            s.register(&mut rng, &tele, TELETAN_TTL_S + 1),
            Err(VerificationError::InvalidTeleTan)
        );
    }

    #[test]
    fn upload_tan_single_use_and_expiring() {
        let (mut s, mut rng) = server(100);
        let tele = s.mint_teletan(&mut rng, 0).unwrap();
        let token = s.register(&mut rng, &tele, 1).unwrap();
        let tan = s.request_upload_tan(&mut rng, &token, 2).unwrap();
        assert_eq!(s.redeem_upload_tan(&tan, 3), Ok(()));
        assert_eq!(
            s.redeem_upload_tan(&tan, 4),
            Err(VerificationError::InvalidUploadTan)
        );

        let tele2 = s.mint_teletan(&mut rng, 10).unwrap();
        let token2 = s.register(&mut rng, &tele2, 11).unwrap();
        let tan2 = s.request_upload_tan(&mut rng, &token2, 12).unwrap();
        assert_eq!(
            s.redeem_upload_tan(&tan2, 12 + UPLOAD_TAN_TTL_S + 1),
            Err(VerificationError::InvalidUploadTan)
        );
    }

    #[test]
    fn registration_token_single_use() {
        let (mut s, mut rng) = server(100);
        let tele = s.mint_teletan(&mut rng, 0).unwrap();
        let token = s.register(&mut rng, &tele, 1).unwrap();
        s.request_upload_tan(&mut rng, &token, 2).unwrap();
        assert_eq!(
            s.request_upload_tan(&mut rng, &token, 3),
            Err(VerificationError::InvalidRegistrationToken)
        );
    }

    #[test]
    fn forged_credentials_rejected() {
        let (mut s, mut rng) = server(100);
        assert_eq!(
            s.register(&mut rng, &TeleTan("AAAAAAAAAA".into()), 0),
            Err(VerificationError::InvalidTeleTan)
        );
        assert_eq!(
            s.request_upload_tan(&mut rng, &RegistrationToken([7; 16]), 0),
            Err(VerificationError::InvalidRegistrationToken)
        );
        assert_eq!(
            s.redeem_upload_tan(&UploadTan([7; 16]), 0),
            Err(VerificationError::InvalidUploadTan)
        );
    }

    #[test]
    fn hotline_rate_limit_resets_daily() {
        let (mut s, mut rng) = server(2);
        assert!(s.mint_teletan(&mut rng, 0).is_ok());
        assert!(s.mint_teletan(&mut rng, 100).is_ok());
        assert_eq!(
            s.mint_teletan(&mut rng, 200),
            Err(VerificationError::RateLimited)
        );
        assert_eq!(s.minted_today(200), 2);
        // Next day the quota resets.
        assert!(s.mint_teletan(&mut rng, 86_400 + 1).is_ok());
        assert_eq!(s.minted_today(86_400 + 1), 1);
    }

    #[test]
    fn teletan_alphabet_unambiguous() {
        let (mut s, mut rng) = server(1000);
        for i in 0..50u64 {
            let tele = s.mint_teletan(&mut rng, i).unwrap();
            for c in tele.0.chars() {
                assert!(!"01OIL".contains(c), "ambiguous char {c} in {tele:?}");
            }
        }
    }

    #[test]
    fn secrets_stored_hashed() {
        // White-box: the server's maps must not contain the raw TAN bytes.
        let (mut s, mut rng) = server(10);
        let tele = s.mint_teletan(&mut rng, 0).unwrap();
        let raw = tele.0.as_bytes();
        for key in s.teletans.keys() {
            assert_ne!(&key[..raw.len().min(32)], &raw[..raw.len().min(32)]);
        }
    }
}
