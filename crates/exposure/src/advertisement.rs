//! BLE advertisement payload for Exposure Notification.
//!
//! Per the *Exposure Notification Bluetooth Specification* (April 2020),
//! phones broadcast non-connectable undirected advertisements containing:
//!
//! * Flags AD structure,
//! * Complete 16-bit Service UUID list containing `0xFD6F`,
//! * Service Data (AD type 0x16) for UUID `0xFD6F` carrying the 16-byte
//!   Rolling Proximity Identifier followed by the 4-byte Associated
//!   Encrypted Metadata.
//!
//! The unencrypted metadata layout (v1.0) is:
//! byte 0 = versioning (`0b01000000` for v1.0), byte 1 = transmit power
//! (signed dBm), bytes 2–3 reserved.

use serde::{Deserialize, Serialize};

use crate::tek::RollingProximityIdentifier;

/// The 16-bit Exposure Notification service UUID.
pub const EN_SERVICE_UUID: u16 = 0xFD6F;

/// Version byte for metadata format v1.0 (major=01, minor=00).
pub const METADATA_VERSION_1_0: u8 = 0b0100_0000;

/// Total length of the advertisement payload we encode: 3 bytes of flags,
/// 4 bytes of UUID list, and 24 bytes of service data — exactly the
/// 31-byte legacy advertising PDU maximum.
pub const ADV_LEN: usize = 31;

/// Errors that can occur when parsing a BLE advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvertisementError {
    /// The payload was shorter than an AD structure header promised.
    Truncated,
    /// No Exposure Notification service-data structure present.
    NotExposureNotification,
    /// Service data present but with the wrong length.
    BadServiceDataLength,
}

impl std::fmt::Display for AdvertisementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvertisementError::Truncated => write!(f, "advertisement truncated"),
            AdvertisementError::NotExposureNotification => {
                write!(f, "no exposure-notification service data")
            }
            AdvertisementError::BadServiceDataLength => {
                write!(f, "exposure-notification service data has wrong length")
            }
        }
    }
}

impl std::error::Error for AdvertisementError {}

/// A decoded Exposure Notification BLE advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BleAdvertisement {
    /// The Rolling Proximity Identifier.
    pub rpi: RollingProximityIdentifier,
    /// The 4-byte Associated Encrypted Metadata.
    pub aem: [u8; 4],
}

impl BleAdvertisement {
    /// Creates an advertisement from its parts.
    pub fn new(rpi: RollingProximityIdentifier, aem: [u8; 4]) -> Self {
        BleAdvertisement { rpi, aem }
    }

    /// Encodes the full legacy-advertising payload (AD structures).
    pub fn encode_full(&self) -> [u8; ADV_LEN] {
        let mut out = [0u8; ADV_LEN];
        let uuid = EN_SERVICE_UUID.to_le_bytes();
        // Flags: LE General Discoverable, BR/EDR not supported.
        out[0] = 0x02; // length
        out[1] = 0x01; // type: Flags
        out[2] = 0x1a;
        // Complete list of 16-bit service UUIDs.
        out[3] = 0x03; // length
        out[4] = 0x03; // type: complete 16-bit UUID list
        out[5] = uuid[0];
        out[6] = uuid[1];
        // Service data: type + UUID(2) + RPI(16) + AEM(4) = 23 bytes.
        out[7] = 0x17; // length: 23
        out[8] = 0x16; // type: Service Data - 16 bit UUID
        out[9] = uuid[0];
        out[10] = uuid[1];
        out[11..27].copy_from_slice(&self.rpi.0);
        out[27..31].copy_from_slice(&self.aem);
        out
    }

    /// Decodes an advertisement payload, scanning its AD structures for
    /// the Exposure Notification service data.
    pub fn decode(payload: &[u8]) -> Result<Self, AdvertisementError> {
        let mut i = 0usize;
        while i < payload.len() {
            let len = payload[i] as usize;
            if len == 0 {
                break; // padding
            }
            if i + 1 + len > payload.len() {
                return Err(AdvertisementError::Truncated);
            }
            let ad_type = payload[i + 1];
            let data = &payload[i + 2..i + 1 + len];
            if ad_type == 0x16 {
                // Service data: first two bytes are the UUID (LE).
                if data.len() >= 2 {
                    let uuid = u16::from_le_bytes([data[0], data[1]]);
                    if uuid == EN_SERVICE_UUID {
                        let body = &data[2..];
                        if body.len() != 20 {
                            return Err(AdvertisementError::BadServiceDataLength);
                        }
                        let mut rpi = [0u8; 16];
                        rpi.copy_from_slice(&body[..16]);
                        let mut aem = [0u8; 4];
                        aem.copy_from_slice(&body[16..]);
                        return Ok(BleAdvertisement {
                            rpi: RollingProximityIdentifier(rpi),
                            aem,
                        });
                    }
                }
            }
            i += 1 + len;
        }
        Err(AdvertisementError::NotExposureNotification)
    }
}

/// Builds the unencrypted v1.0 metadata from a transmit power in dBm.
pub fn metadata_v1(tx_power_dbm: i8) -> [u8; 4] {
    [METADATA_VERSION_1_0, tx_power_dbm as u8, 0, 0]
}

/// Extracts the transmit power from decrypted v1.0 metadata.
pub fn tx_power_from_metadata(metadata: &[u8; 4]) -> i8 {
    metadata[1] as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rpi(byte: u8) -> RollingProximityIdentifier {
        RollingProximityIdentifier([byte; 16])
    }

    #[test]
    fn encode_layout_header() {
        let adv = BleAdvertisement::new(rpi(0xAB), [1, 2, 3, 4]);
        let bytes = adv.encode_full();
        assert_eq!(bytes[0], 0x02);
        assert_eq!(bytes[1], 0x01); // flags
        assert_eq!(bytes[4], 0x03); // uuid list
        assert_eq!(u16::from_le_bytes([bytes[5], bytes[6]]), EN_SERVICE_UUID);
        assert_eq!(bytes[8], 0x16); // service data
    }

    #[test]
    fn roundtrip() {
        let adv = BleAdvertisement::new(rpi(0x5A), [9, 8, 7, 6]);
        let bytes = adv.encode_full();
        let dec = BleAdvertisement::decode(&bytes).unwrap();
        assert_eq!(dec, adv);
    }

    #[test]
    fn decode_rejects_non_en() {
        // A service-data structure for a different UUID.
        let payload = [0x05u8, 0x16, 0x0F, 0x18, 0x64, 0x00];
        assert_eq!(
            BleAdvertisement::decode(&payload),
            Err(AdvertisementError::NotExposureNotification)
        );
    }

    #[test]
    fn decode_rejects_truncated() {
        let adv = BleAdvertisement::new(rpi(1), [0; 4]);
        let bytes = adv.encode_full();
        assert_eq!(
            BleAdvertisement::decode(&bytes[..10]),
            Err(AdvertisementError::Truncated)
        );
    }

    #[test]
    fn decode_rejects_bad_length() {
        // EN UUID but 19-byte body.
        let mut payload = vec![0x16u8, 0x16, 0x6F, 0xFD];
        payload.extend_from_slice(&[0u8; 19]);
        payload[0] = (payload.len() - 1) as u8;
        assert_eq!(
            BleAdvertisement::decode(&payload),
            Err(AdvertisementError::BadServiceDataLength)
        );
    }

    #[test]
    fn decode_skips_leading_structures() {
        // Manufacturer data first, then EN service data.
        let adv = BleAdvertisement::new(rpi(0x11), [4, 3, 2, 1]);
        let mut payload = vec![0x03u8, 0xFF, 0x4C, 0x00];
        payload.extend_from_slice(&adv.encode_full()[7..]);
        assert_eq!(BleAdvertisement::decode(&payload).unwrap(), adv);
    }

    #[test]
    fn metadata_tx_power() {
        let m = metadata_v1(-12);
        assert_eq!(m[0], METADATA_VERSION_1_0);
        assert_eq!(tx_power_from_metadata(&m), -12);
    }

    #[test]
    fn zero_length_padding_terminates() {
        let mut payload = BleAdvertisement::new(rpi(2), [0; 4]).encode_full().to_vec();
        payload.push(0); // trailing padding byte
        payload.push(0);
        assert!(BleAdvertisement::decode(&payload).is_ok());
    }
}
