//! Exposure risk scoring (Exposure Notification v1 semantics).
//!
//! The v1 API computes, per matched exposure, a **total risk score** as
//! the product of four level values, each looked up from an 8-entry
//! configuration table:
//!
//! ```text
//! score = attenuation_score × days_since_exposure_score
//!       × duration_score × transmission_risk_score
//! ```
//!
//! Each table maps a bucketed input (signal attenuation in dB, days since
//! the exposure, exposure duration in minutes, transmission risk level)
//! to a value 0–8. A `minimum_risk_score` threshold suppresses
//! low-scoring exposures. The CWA used this mechanism (with its own
//! parameter choices) to decide when to show the red "increased risk"
//! status.

use serde::{Deserialize, Serialize};

/// A computed total risk score (0 ..= 4096 = 8⁴).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RiskScore(pub u16);

impl RiskScore {
    /// The maximum representable total risk score.
    pub const MAX: RiskScore = RiskScore(4096);
}

/// The 8-bucket score tables of the v1 `ExposureConfiguration`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExposureConfiguration {
    /// Score per attenuation bucket:
    /// `> 73 dB, 64–73, 52–63, 34–51, 28–33, 16–27, 11–15, ≤ 10`.
    pub attenuation_scores: [u8; 8],
    /// Score per days-since-exposure bucket:
    /// `≥ 14 days, 12–13, 10–11, 8–9, 6–7, 4–5, 2–3, 0–1`.
    pub days_scores: [u8; 8],
    /// Score per duration bucket:
    /// `0 min, ≤ 5, ≤ 10, ≤ 15, ≤ 20, ≤ 25, ≤ 30, > 30`.
    pub duration_scores: [u8; 8],
    /// Score per transmission risk level 0–7.
    pub transmission_scores: [u8; 8],
    /// Exposures scoring below this value are reported as zero.
    pub minimum_risk_score: u16,
    /// Attenuation bucket edges `[low, high]` in dB for the dual-threshold
    /// duration accounting (CWA used 55 dB / 63 dB).
    pub attenuation_duration_thresholds: [u8; 2],
}

impl Default for ExposureConfiguration {
    /// A CWA-like configuration: risk dominated by proximity (attenuation)
    /// and duration, with recency taken into account.
    fn default() -> Self {
        ExposureConfiguration {
            attenuation_scores: [0, 1, 2, 4, 6, 8, 8, 8],
            days_scores: [1, 1, 2, 3, 4, 5, 7, 8],
            duration_scores: [0, 1, 2, 4, 5, 6, 7, 8],
            transmission_scores: [0, 1, 2, 3, 5, 6, 7, 8],
            minimum_risk_score: 11,
            attenuation_duration_thresholds: [55, 63],
        }
    }
}

impl ExposureConfiguration {
    /// Buckets a BLE signal attenuation (dB) into index 0–7.
    ///
    /// Attenuation = TX power − RSSI; *lower* attenuation means *closer*
    /// contact, hence a higher bucket index / score.
    pub fn attenuation_bucket(attenuation_db: u8) -> usize {
        match attenuation_db {
            74..=u8::MAX => 0,
            64..=73 => 1,
            52..=63 => 2,
            34..=51 => 3,
            28..=33 => 4,
            16..=27 => 5,
            11..=15 => 6,
            0..=10 => 7,
        }
    }

    /// Buckets days-since-exposure into index 0–7 (more recent ⇒ higher).
    pub fn days_bucket(days: i64) -> usize {
        match days {
            d if d >= 14 => 0,
            12..=13 => 1,
            10..=11 => 2,
            8..=9 => 3,
            6..=7 => 4,
            4..=5 => 5,
            2..=3 => 6,
            _ => 7, // 0–1 days (and defensive: negatives treated as most recent)
        }
    }

    /// Buckets an exposure duration in minutes into index 0–7.
    pub fn duration_bucket(minutes: u32) -> usize {
        match minutes {
            0 => 0,
            1..=5 => 1,
            6..=10 => 2,
            11..=15 => 3,
            16..=20 => 4,
            21..=25 => 5,
            26..=30 => 6,
            _ => 7,
        }
    }

    /// Computes the total risk score for one exposure.
    ///
    /// Returns `RiskScore(0)` when below `minimum_risk_score`.
    pub fn score(
        &self,
        attenuation_db: u8,
        days_since_exposure: i64,
        duration_minutes: u32,
        transmission_risk_level: u8,
    ) -> RiskScore {
        let a = u16::from(self.attenuation_scores[Self::attenuation_bucket(attenuation_db)]);
        let d = u16::from(self.days_scores[Self::days_bucket(days_since_exposure)]);
        let t = u16::from(self.duration_scores[Self::duration_bucket(duration_minutes)]);
        let r = u16::from(self.transmission_scores[usize::from(transmission_risk_level.min(7))]);
        let total = a * d * t * r;
        if total < self.minimum_risk_score {
            RiskScore(0)
        } else {
            RiskScore(total)
        }
    }

    /// Splits a total exposure duration (minutes) into the three
    /// attenuation-threshold buckets `[below_low, between, above_high]`
    /// used by CWA's risk calculation, given a representative attenuation.
    pub fn attenuation_durations(&self, attenuation_db: u8, duration_minutes: u32) -> [u32; 3] {
        let [low, high] = self.attenuation_duration_thresholds;
        if attenuation_db < low {
            [duration_minutes, 0, 0]
        } else if attenuation_db < high {
            [0, duration_minutes, 0]
        } else {
            [0, 0, duration_minutes]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_attenuation() {
        assert_eq!(ExposureConfiguration::attenuation_bucket(255), 0);
        assert_eq!(ExposureConfiguration::attenuation_bucket(74), 0);
        assert_eq!(ExposureConfiguration::attenuation_bucket(73), 1);
        assert_eq!(ExposureConfiguration::attenuation_bucket(64), 1);
        assert_eq!(ExposureConfiguration::attenuation_bucket(63), 2);
        assert_eq!(ExposureConfiguration::attenuation_bucket(52), 2);
        assert_eq!(ExposureConfiguration::attenuation_bucket(51), 3);
        assert_eq!(ExposureConfiguration::attenuation_bucket(34), 3);
        assert_eq!(ExposureConfiguration::attenuation_bucket(33), 4);
        assert_eq!(ExposureConfiguration::attenuation_bucket(28), 4);
        assert_eq!(ExposureConfiguration::attenuation_bucket(27), 5);
        assert_eq!(ExposureConfiguration::attenuation_bucket(16), 5);
        assert_eq!(ExposureConfiguration::attenuation_bucket(15), 6);
        assert_eq!(ExposureConfiguration::attenuation_bucket(11), 6);
        assert_eq!(ExposureConfiguration::attenuation_bucket(10), 7);
        assert_eq!(ExposureConfiguration::attenuation_bucket(0), 7);
    }

    #[test]
    fn bucket_edges_days() {
        assert_eq!(ExposureConfiguration::days_bucket(20), 0);
        assert_eq!(ExposureConfiguration::days_bucket(14), 0);
        assert_eq!(ExposureConfiguration::days_bucket(13), 1);
        assert_eq!(ExposureConfiguration::days_bucket(10), 2);
        assert_eq!(ExposureConfiguration::days_bucket(9), 3);
        assert_eq!(ExposureConfiguration::days_bucket(7), 4);
        assert_eq!(ExposureConfiguration::days_bucket(4), 5);
        assert_eq!(ExposureConfiguration::days_bucket(2), 6);
        assert_eq!(ExposureConfiguration::days_bucket(0), 7);
        assert_eq!(ExposureConfiguration::days_bucket(-1), 7);
    }

    #[test]
    fn bucket_edges_duration() {
        assert_eq!(ExposureConfiguration::duration_bucket(0), 0);
        assert_eq!(ExposureConfiguration::duration_bucket(5), 1);
        assert_eq!(ExposureConfiguration::duration_bucket(6), 2);
        assert_eq!(ExposureConfiguration::duration_bucket(30), 6);
        assert_eq!(ExposureConfiguration::duration_bucket(31), 7);
        assert_eq!(ExposureConfiguration::duration_bucket(10_000), 7);
    }

    #[test]
    fn close_long_recent_contact_scores_high() {
        let cfg = ExposureConfiguration::default();
        let close = cfg.score(20, 2, 30, 6);
        let far = cfg.score(80, 2, 30, 6);
        assert!(close > far);
        assert!(
            close.0 >= 1000,
            "close contact should score high: {close:?}"
        );
        assert_eq!(far, RiskScore(0), "attenuation bucket 0 scores 0");
    }

    #[test]
    fn minimum_threshold_suppresses() {
        let cfg = ExposureConfiguration {
            minimum_risk_score: 5000, // above the 4096 max
            ..Default::default()
        };
        assert_eq!(cfg.score(20, 1, 30, 7), RiskScore(0));
    }

    #[test]
    fn score_is_monotone_in_duration() {
        let cfg = ExposureConfiguration::default();
        let mut prev = RiskScore(0);
        for minutes in [1u32, 6, 11, 16, 21, 26, 31] {
            let s = cfg.score(20, 1, minutes, 5);
            assert!(s >= prev, "duration {minutes}: {s:?} < {prev:?}");
            prev = s;
        }
    }

    #[test]
    fn max_score_is_4096() {
        let cfg = ExposureConfiguration {
            attenuation_scores: [8; 8],
            days_scores: [8; 8],
            duration_scores: [8; 8],
            transmission_scores: [8; 8],
            minimum_risk_score: 0,
            attenuation_duration_thresholds: [55, 63],
        };
        assert_eq!(cfg.score(0, 0, 31, 7), RiskScore::MAX);
    }

    #[test]
    fn attenuation_durations_pick_one_bucket() {
        let cfg = ExposureConfiguration::default();
        assert_eq!(cfg.attenuation_durations(40, 25), [25, 0, 0]);
        assert_eq!(cfg.attenuation_durations(58, 25), [0, 25, 0]);
        assert_eq!(cfg.attenuation_durations(70, 25), [0, 0, 25]);
        // Sum is always the input duration.
        for att in [0u8, 54, 55, 62, 63, 90] {
            let d = cfg.attenuation_durations(att, 17);
            assert_eq!(d.iter().sum::<u32>(), 17);
        }
    }

    #[test]
    fn transmission_level_clamped() {
        let cfg = ExposureConfiguration::default();
        assert_eq!(cfg.score(20, 1, 30, 7), cfg.score(20, 1, 30, 255));
    }
}
