//! Exposure risk scoring, v2 semantics ("Exposure Windows").
//!
//! The paper observes the app in June 2020, when it used the v1
//! API ([`crate::risk`]). In late 2020 the CWA migrated to the
//! Exposure Notification Framework v2, which replaces the opaque
//! 0–4096 score with **weighted exposure minutes** computed from
//! per-scan attenuation data:
//!
//! * BLE scans are grouped into ≤ 30-minute **exposure windows** per
//!   matched key;
//! * each scan instance contributes its duration, weighted by which
//!   attenuation bucket its typical attenuation falls into (CWA used
//!   thresholds 55 / 63 / 73 dB with weights 100 % / 100 % / 49.5 % /
//!   0 %);
//! * the sum is further weighted by the diagnosed person's
//!   **infectiousness** (days since symptom onset) and **report type**;
//! * a day whose total weighted minutes exceed a threshold turns the
//!   app's risk tile red (increased risk).
//!
//! Implemented here as the "future work / extension" feature of the
//! reproduction; the ablation benches compare v1 and v2 verdicts on the
//! same contact patterns.

use serde::{Deserialize, Serialize};

/// Infectiousness of the diagnosed person during the window's day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Infectiousness {
    /// No transmission risk (outside the infectious period).
    None,
    /// Standard infectiousness.
    Standard,
    /// High infectiousness (around symptom onset).
    High,
}

impl Infectiousness {
    /// CWA-style mapping from days since symptom onset.
    pub fn from_days_since_onset(days: i32) -> Self {
        match days {
            -2..=3 => Infectiousness::High,
            -4..=8 => Infectiousness::Standard,
            _ => Infectiousness::None,
        }
    }
}

/// How the diagnosis was verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportType {
    /// Lab-confirmed positive test.
    ConfirmedTest,
    /// Clinical diagnosis without test confirmation.
    ConfirmedClinicalDiagnosis,
    /// Self-reported.
    SelfReport,
}

/// One BLE scan instance within an exposure window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanInstance {
    /// Typical (median) attenuation during the scan, dB.
    pub typical_attenuation_db: u8,
    /// Seconds attributed to this scan.
    pub seconds_since_last_scan: u32,
}

/// A ≤ 30-minute exposure window against one diagnosis key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureWindow {
    /// Study day the window occurred on.
    pub day: u32,
    /// The diagnosed contact's infectiousness that day.
    pub infectiousness: Infectiousness,
    /// Verification pathway of the diagnosis.
    pub report_type: ReportType,
    /// The scans.
    pub scan_instances: Vec<ScanInstance>,
}

/// v2 risk configuration (defaults mirror CWA's production parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskConfigV2 {
    /// Attenuation bucket edges in dB: `[immediate, near, medium]`;
    /// anything above the last edge is "other".
    pub attenuation_thresholds_db: [u8; 3],
    /// Weight per bucket `[immediate, near, medium, other]`.
    pub attenuation_weights: [f64; 4],
    /// Weight for [`Infectiousness::Standard`] (High is 1.0).
    pub standard_infectiousness_weight: f64,
    /// Weight per report type `[confirmed, clinical, self]`.
    pub report_type_weights: [f64; 3],
    /// Weighted minutes per day at/above which the day counts as
    /// *increased risk* (red tile).
    pub high_risk_minutes_per_day: f64,
    /// Weighted minutes per day at/above which the day counts as *low
    /// risk* (green tile with encounters).
    pub low_risk_minutes_per_day: f64,
}

impl Default for RiskConfigV2 {
    fn default() -> Self {
        RiskConfigV2 {
            attenuation_thresholds_db: [55, 63, 73],
            attenuation_weights: [1.0, 1.0, 0.495, 0.0],
            standard_infectiousness_weight: 1.0,
            report_type_weights: [1.0, 1.0, 0.6],
            high_risk_minutes_per_day: 15.0,
            low_risk_minutes_per_day: 5.0,
        }
    }
}

/// The per-day verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RiskLevelV2 {
    /// No relevant exposure.
    NoRisk,
    /// Encounters happened but below the high-risk threshold.
    LowRisk,
    /// The red tile: increased risk.
    HighRisk,
}

/// A day's aggregated result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayRisk {
    /// Study day.
    pub day: u32,
    /// Total weighted exposure minutes.
    pub weighted_minutes: f64,
    /// Verdict.
    pub level: RiskLevelV2,
}

impl RiskConfigV2 {
    /// Bucket index (0–3) for a typical attenuation.
    pub fn bucket(&self, attenuation_db: u8) -> usize {
        let [a, b, c] = self.attenuation_thresholds_db;
        if attenuation_db <= a {
            0
        } else if attenuation_db <= b {
            1
        } else if attenuation_db <= c {
            2
        } else {
            3
        }
    }

    /// Weighted minutes contributed by one window.
    pub fn window_minutes(&self, window: &ExposureWindow) -> f64 {
        let infect = match window.infectiousness {
            Infectiousness::None => return 0.0,
            Infectiousness::Standard => self.standard_infectiousness_weight,
            Infectiousness::High => 1.0,
        };
        let report = match window.report_type {
            ReportType::ConfirmedTest => self.report_type_weights[0],
            ReportType::ConfirmedClinicalDiagnosis => self.report_type_weights[1],
            ReportType::SelfReport => self.report_type_weights[2],
        };
        let seconds: f64 = window
            .scan_instances
            .iter()
            .map(|s| {
                self.attenuation_weights[self.bucket(s.typical_attenuation_db)]
                    * f64::from(s.seconds_since_last_scan)
            })
            .sum();
        seconds / 60.0 * infect * report
    }

    /// Aggregates windows into per-day risk verdicts (sorted by day).
    pub fn evaluate(&self, windows: &[ExposureWindow]) -> Vec<DayRisk> {
        let mut by_day: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for w in windows {
            *by_day.entry(w.day).or_insert(0.0) += self.window_minutes(w);
        }
        by_day
            .into_iter()
            .map(|(day, weighted_minutes)| {
                let level = if weighted_minutes >= self.high_risk_minutes_per_day {
                    RiskLevelV2::HighRisk
                } else if weighted_minutes >= self.low_risk_minutes_per_day {
                    RiskLevelV2::LowRisk
                } else {
                    RiskLevelV2::NoRisk
                };
                DayRisk {
                    day,
                    weighted_minutes,
                    level,
                }
            })
            .collect()
    }

    /// The overall verdict: the worst day.
    pub fn overall(&self, windows: &[ExposureWindow]) -> RiskLevelV2 {
        self.evaluate(windows)
            .into_iter()
            .map(|d| d.level)
            .max_by_key(|l| match l {
                RiskLevelV2::NoRisk => 0,
                RiskLevelV2::LowRisk => 1,
                RiskLevelV2::HighRisk => 2,
            })
            .unwrap_or(RiskLevelV2::NoRisk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(day: u32, attenuation: u8, minutes: u32) -> ExposureWindow {
        ExposureWindow {
            day,
            infectiousness: Infectiousness::High,
            report_type: ReportType::ConfirmedTest,
            scan_instances: vec![ScanInstance {
                typical_attenuation_db: attenuation,
                seconds_since_last_scan: minutes * 60,
            }],
        }
    }

    #[test]
    fn bucket_edges() {
        let cfg = RiskConfigV2::default();
        assert_eq!(cfg.bucket(0), 0);
        assert_eq!(cfg.bucket(55), 0);
        assert_eq!(cfg.bucket(56), 1);
        assert_eq!(cfg.bucket(63), 1);
        assert_eq!(cfg.bucket(64), 2);
        assert_eq!(cfg.bucket(73), 2);
        assert_eq!(cfg.bucket(74), 3);
        assert_eq!(cfg.bucket(255), 3);
    }

    #[test]
    fn close_long_contact_is_high_risk() {
        let cfg = RiskConfigV2::default();
        let days = cfg.evaluate(&[window(3, 40, 20)]);
        assert_eq!(days.len(), 1);
        assert!((days[0].weighted_minutes - 20.0).abs() < 1e-9);
        assert_eq!(days[0].level, RiskLevelV2::HighRisk);
    }

    #[test]
    fn medium_distance_discounted() {
        let cfg = RiskConfigV2::default();
        // 20 minutes at 70 dB: weight 0.495 → 9.9 weighted minutes.
        let days = cfg.evaluate(&[window(3, 70, 20)]);
        assert!((days[0].weighted_minutes - 9.9).abs() < 1e-9);
        assert_eq!(days[0].level, RiskLevelV2::LowRisk);
    }

    #[test]
    fn far_contact_is_no_risk() {
        let cfg = RiskConfigV2::default();
        let days = cfg.evaluate(&[window(3, 80, 60)]);
        assert_eq!(days[0].weighted_minutes, 0.0);
        assert_eq!(days[0].level, RiskLevelV2::NoRisk);
    }

    #[test]
    fn minutes_accumulate_across_windows_same_day() {
        let cfg = RiskConfigV2::default();
        // Two 8-minute close windows on the same day: 16 > 15 → high.
        let days = cfg.evaluate(&[window(3, 40, 8), window(3, 40, 8)]);
        assert_eq!(days[0].level, RiskLevelV2::HighRisk);
        // Spread over two days: each 8 < 15 → low.
        let days = cfg.evaluate(&[window(3, 40, 8), window(4, 40, 8)]);
        assert!(days.iter().all(|d| d.level == RiskLevelV2::LowRisk));
    }

    #[test]
    fn infectiousness_gates_everything() {
        let cfg = RiskConfigV2::default();
        let mut w = window(3, 40, 30);
        w.infectiousness = Infectiousness::None;
        assert_eq!(cfg.window_minutes(&w), 0.0);
    }

    #[test]
    fn infectiousness_mapping() {
        assert_eq!(
            Infectiousness::from_days_since_onset(0),
            Infectiousness::High
        );
        assert_eq!(
            Infectiousness::from_days_since_onset(3),
            Infectiousness::High
        );
        assert_eq!(
            Infectiousness::from_days_since_onset(5),
            Infectiousness::Standard
        );
        assert_eq!(
            Infectiousness::from_days_since_onset(-3),
            Infectiousness::Standard
        );
        assert_eq!(
            Infectiousness::from_days_since_onset(12),
            Infectiousness::None
        );
        assert_eq!(
            Infectiousness::from_days_since_onset(-10),
            Infectiousness::None
        );
    }

    #[test]
    fn self_report_discounted() {
        let cfg = RiskConfigV2::default();
        let confirmed = window(3, 40, 20);
        let mut selfrep = confirmed.clone();
        selfrep.report_type = ReportType::SelfReport;
        assert!(cfg.window_minutes(&selfrep) < cfg.window_minutes(&confirmed));
    }

    #[test]
    fn overall_takes_worst_day() {
        let cfg = RiskConfigV2::default();
        let windows = vec![window(1, 80, 60), window(2, 40, 6), window(3, 40, 30)];
        assert_eq!(cfg.overall(&windows), RiskLevelV2::HighRisk);
        assert_eq!(cfg.overall(&[]), RiskLevelV2::NoRisk);
    }

    #[test]
    fn mixed_scan_instances_within_window() {
        let cfg = RiskConfigV2::default();
        let w = ExposureWindow {
            day: 1,
            infectiousness: Infectiousness::High,
            report_type: ReportType::ConfirmedTest,
            scan_instances: vec![
                ScanInstance {
                    typical_attenuation_db: 50,
                    seconds_since_last_scan: 300,
                },
                ScanInstance {
                    typical_attenuation_db: 70,
                    seconds_since_last_scan: 300,
                },
                ScanInstance {
                    typical_attenuation_db: 90,
                    seconds_since_last_scan: 300,
                },
            ],
        };
        // 5 + 5*0.495 + 0 = 7.475 minutes.
        assert!((cfg.window_minutes(&w) - 7.475).abs() < 1e-9);
    }
}
