//! BLE contact physics: distance → attenuation, and a co-location
//! simulator that drives two devices' advertise/observe loops.
//!
//! Attenuation (the quantity both risk models bucket on) is
//! `TX power − RSSI`. RSSI follows a log-distance path-loss model with
//! shadow fading:
//!
//! ```text
//! attenuation(d) = A₀ + 10·n·log10(d / 1 m) + N(0, σ)
//! ```
//!
//! with `A₀` the 1-metre reference attenuation (~45 dB for phones in
//! pockets), path-loss exponent `n ≈ 2.0–2.5` indoors, and σ a few dB of
//! fading — numbers in line with the BLE proximity-estimation literature
//! the GAEN attenuation buckets were designed around.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::device::Device;
use crate::risk_v2::{ExposureWindow, Infectiousness, ReportType, ScanInstance};
use crate::time::EnIntervalNumber;

/// Path-loss parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Attenuation at 1 m, dB.
    pub reference_db: f64,
    /// Path-loss exponent.
    pub exponent: f64,
    /// Shadow-fading standard deviation, dB.
    pub fading_sigma_db: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel {
            reference_db: 45.0,
            exponent: 2.2,
            fading_sigma_db: 4.0,
        }
    }
}

impl PathLossModel {
    /// Expected attenuation at `distance_m` (no fading).
    pub fn mean_attenuation(&self, distance_m: f64) -> f64 {
        self.reference_db + 10.0 * self.exponent * distance_m.max(0.1).log10()
    }

    /// One noisy attenuation sample at `distance_m`, clamped to [0, 255].
    pub fn sample<R: Rng>(&self, rng: &mut R, distance_m: f64) -> u8 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mean_attenuation(distance_m) + self.fading_sigma_db * z)
            .clamp(0.0, 255.0)
            .round() as u8
    }
}

/// One co-location episode between two people.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Encounter {
    /// Distance between the phones, metres.
    pub distance_m: f64,
    /// Start interval.
    pub start: EnIntervalNumber,
    /// Duration in 10-minute intervals.
    pub intervals: u32,
}

/// Drives the full BLE exchange of an encounter: key rolling,
/// advertising, scanning, and storage on both devices.
pub fn simulate_encounter<R: RngCore + Rng>(
    rng: &mut R,
    model: &PathLossModel,
    a: &mut Device,
    b: &mut Device,
    encounter: &Encounter,
) {
    for i in 0..encounter.intervals {
        let t = encounter.start.advance(i);
        a.roll_key_if_needed(rng, t);
        b.roll_key_if_needed(rng, t);
        let adv_a = a.advertise(t);
        let adv_b = b.advertise(t);
        let att_ab = model.sample(rng, encounter.distance_m);
        let att_ba = model.sample(rng, encounter.distance_m);
        b.observe(&adv_a, t, att_ab, 10);
        a.observe(&adv_b, t, att_ba, 10);
    }
}

/// Converts an encounter (as the *scanning* device experienced it) into
/// a v2 exposure window, for comparing v1 and v2 risk verdicts on the
/// same physical contact.
pub fn encounter_to_window<R: Rng>(
    rng: &mut R,
    model: &PathLossModel,
    encounter: &Encounter,
    day: u32,
    days_since_onset: i32,
) -> ExposureWindow {
    let scan_instances = (0..encounter.intervals)
        .map(|_| ScanInstance {
            typical_attenuation_db: model.sample(rng, encounter.distance_m),
            seconds_since_last_scan: 600,
        })
        .collect();
    ExposureWindow {
        day,
        infectiousness: Infectiousness::from_days_since_onset(days_since_onset),
        report_type: ReportType::ConfirmedTest,
        scan_instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn attenuation_grows_with_distance() {
        let m = PathLossModel::default();
        assert!(m.mean_attenuation(0.5) < m.mean_attenuation(2.0));
        assert!(m.mean_attenuation(2.0) < m.mean_attenuation(10.0));
        // 1 m is the reference point.
        assert!((m.mean_attenuation(1.0) - m.reference_db).abs() < 1e-9);
    }

    #[test]
    fn gaen_bucket_alignment() {
        // The GAEN thresholds (55/63/73 dB) should roughly separate
        // close (~1 m), near (~2–3 m), and far (> 5 m) contacts.
        let m = PathLossModel::default();
        assert!(m.mean_attenuation(1.0) < 55.0);
        assert!(m.mean_attenuation(2.5) > 52.0 && m.mean_attenuation(3.0) < 73.0);
        assert!(m.mean_attenuation(20.0) > 73.0);
    }

    #[test]
    fn sample_noise_is_bounded_and_centred() {
        let m = PathLossModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| f64::from(m.sample(&mut rng, 2.0)))
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - m.mean_attenuation(2.0)).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn encounter_drives_both_devices() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = PathLossModel::default();
        let mut a = Device::new(1);
        let mut b = Device::new(2);
        let enc = Encounter {
            distance_m: 1.5,
            start: EnIntervalNumber(144 * 18_000 + 60),
            intervals: 4,
        };
        simulate_encounter(&mut rng, &m, &mut a, &mut b, &enc);
        assert_eq!(a.encounter_count(), 4);
        assert_eq!(b.encounter_count(), 4);
    }

    #[test]
    fn close_contact_ends_in_exposure_via_v1() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = PathLossModel::default();
        let mut sick = Device::new(1);
        let mut healthy = Device::new(2);
        let day0 = EnIntervalNumber(144 * 18_000);
        let enc = Encounter {
            distance_m: 1.0,
            start: day0.advance(60),
            intervals: 3,
        };
        simulate_encounter(&mut rng, &m, &mut sick, &mut healthy, &enc);

        let day1 = EnIntervalNumber(144 * 18_001);
        sick.roll_key_if_needed(&mut rng, day1);
        let keys = sick.upload_diagnosis_keys(day1, 6);
        let matches = healthy.check_exposure(&keys, day1);
        assert_eq!(matches.len(), 1);
        assert!(
            matches[0].risk_score.0 > 0,
            "close 30-min contact flags v1 risk"
        );
    }

    #[test]
    fn window_conversion_respects_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = PathLossModel::default();
        let close = Encounter {
            distance_m: 1.0,
            start: EnIntervalNumber(144 * 18_000),
            intervals: 3,
        };
        let far = Encounter {
            distance_m: 100.0,
            ..close
        };
        let cfg = crate::risk_v2::RiskConfigV2::default();
        let w_close = encounter_to_window(&mut rng, &m, &close, 0, 1);
        let w_far = encounter_to_window(&mut rng, &m, &far, 0, 1);
        assert!(cfg.window_minutes(&w_close) > cfg.window_minutes(&w_far));
        assert_eq!(cfg.window_minutes(&w_far), 0.0, "100 m is no exposure");
    }
}
