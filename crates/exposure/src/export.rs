//! The `TemporaryExposureKeyExport` diagnosis-key file format.
//!
//! This is the payload the CWA backend distributes via its CDN and that
//! every app instance downloads once per day — i.e. *the* traffic the
//! paper's NetFlow traces consist of. The format follows the Google/Apple
//! *Exposure Key Export File Format and Verification* document:
//!
//! ```text
//! export.bin := "EK Export v1" padded with spaces to 16 bytes
//!             ‖ protobuf(TemporaryExposureKeyExport)
//!
//! message TemporaryExposureKeyExport {
//!   optional fixed64 start_timestamp = 1;   // UTC seconds
//!   optional fixed64 end_timestamp   = 2;
//!   optional string  region          = 3;   // "DE" for CWA
//!   optional int32   batch_num       = 4;
//!   optional int32   batch_size      = 5;
//!   repeated SignatureInfo signature_infos = 6;
//!   repeated TemporaryExposureKey keys     = 7;
//! }
//! message TemporaryExposureKey {
//!   optional bytes key_data = 1;
//!   optional int32 transmission_risk_level = 2;
//!   optional int32 rolling_start_interval_number = 3;
//!   optional int32 rolling_period = 4; // defaults to 144
//! }
//! ```
//!
//! `SignatureInfo` is carried opaquely (the real CWA signs exports with
//! ECDSA-P256; signature verification is out of scope for the traffic
//! study, but the field is preserved for wire compatibility).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::protobuf::{DecodeError, FieldValue, Reader, Writer};
use crate::tek::{DiagnosisKey, TemporaryExposureKey};
use crate::time::TEK_ROLLING_PERIOD;

/// The fixed 16-byte header prefix of every export file.
pub const EXPORT_HEADER: &[u8; 16] = b"EK Export v1    ";

/// Errors specific to export-file parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// File shorter than the 16-byte header.
    TooShort,
    /// Header magic mismatch.
    BadHeader,
    /// Underlying protobuf decode failure.
    Protobuf(DecodeError),
    /// A key record was malformed.
    BadKey(&'static str),
}

impl From<DecodeError> for ExportError {
    fn from(e: DecodeError) -> Self {
        ExportError::Protobuf(e)
    }
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::TooShort => write!(f, "export file shorter than header"),
            ExportError::BadHeader => write!(f, "export header magic mismatch"),
            ExportError::Protobuf(e) => write!(f, "protobuf error: {e}"),
            ExportError::BadKey(what) => write!(f, "malformed key record: {what}"),
        }
    }
}

impl std::error::Error for ExportError {}

/// A parsed / constructible diagnosis-key export file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporaryExposureKeyExport {
    /// Start of the time window covered by this export (UTC seconds).
    pub start_timestamp: u64,
    /// End of the time window covered by this export (UTC seconds).
    pub end_timestamp: u64,
    /// Region code; `"DE"` for the Corona-Warn-App.
    pub region: String,
    /// 1-based batch number within a multi-file export.
    pub batch_num: i32,
    /// Total number of batches in the export.
    pub batch_size: i32,
    /// Opaque signature-info blobs (kept byte-for-byte).
    pub signature_infos: Vec<Vec<u8>>,
    /// The published diagnosis keys.
    pub keys: Vec<DiagnosisKey>,
}

impl TemporaryExposureKeyExport {
    /// Builds a single-batch export for Germany covering `[start, end)`.
    pub fn new_de(start_timestamp: u64, end_timestamp: u64, keys: Vec<DiagnosisKey>) -> Self {
        TemporaryExposureKeyExport {
            start_timestamp,
            end_timestamp,
            region: "DE".to_owned(),
            batch_num: 1,
            batch_size: 1,
            signature_infos: Vec::new(),
            keys,
        }
    }

    /// Serializes to the on-the-wire file format (header + protobuf).
    pub fn encode(&self) -> Vec<u8> {
        let mut msg = Writer::new();
        msg.field_fixed64(1, self.start_timestamp);
        msg.field_fixed64(2, self.end_timestamp);
        msg.field_string(3, &self.region);
        msg.field_int32(4, self.batch_num);
        msg.field_int32(5, self.batch_size);
        for si in &self.signature_infos {
            msg.field_bytes(6, si);
        }
        for dk in &self.keys {
            let mut k = Writer::new();
            k.field_bytes(1, &dk.tek.key);
            k.field_int32(2, i32::from(dk.transmission_risk_level));
            k.field_int32(3, dk.tek.rolling_start_interval_number as i32);
            k.field_int32(4, dk.tek.rolling_period as i32);
            msg.field_message(7, &k);
        }

        let body = msg.finish();
        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(EXPORT_HEADER);
        out.extend_from_slice(&body);
        out
    }

    /// Parses an export file.
    pub fn decode(data: &[u8]) -> Result<Self, ExportError> {
        if data.len() < 16 {
            return Err(ExportError::TooShort);
        }
        if &data[..16] != EXPORT_HEADER {
            return Err(ExportError::BadHeader);
        }
        let mut reader = Reader::new(Bytes::copy_from_slice(&data[16..]));

        let mut export = TemporaryExposureKeyExport {
            start_timestamp: 0,
            end_timestamp: 0,
            region: String::new(),
            batch_num: 1,
            batch_size: 1,
            signature_infos: Vec::new(),
            keys: Vec::new(),
        };

        while !reader.is_done() {
            let (field, value) = reader.field()?;
            match field {
                1 => export.start_timestamp = value.as_fixed64()?,
                2 => export.end_timestamp = value.as_fixed64()?,
                3 => {
                    export.region = String::from_utf8(value.as_bytes()?.to_vec())
                        .map_err(|_| ExportError::BadKey("region not utf-8"))?
                }
                4 => export.batch_num = value.as_int32()?,
                5 => export.batch_size = value.as_int32()?,
                6 => export.signature_infos.push(value.as_bytes()?.to_vec()),
                7 => export.keys.push(decode_key(value)?),
                _ => { /* unknown field: skip, forward-compatible */ }
            }
        }
        Ok(export)
    }

    /// Serialized size in bytes (used by the traffic model to size the
    /// daily key-download flows realistically).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// Decodes one embedded `TemporaryExposureKey` message.
fn decode_key(value: FieldValue) -> Result<DiagnosisKey, ExportError> {
    let bytes = value.as_bytes()?.clone();
    let mut r = Reader::new(bytes);
    let mut key_data: Option<[u8; 16]> = None;
    let mut risk = 0u8;
    let mut start: Option<u32> = None;
    let mut period = TEK_ROLLING_PERIOD;
    while !r.is_done() {
        let (field, value) = r.field()?;
        match field {
            1 => {
                let b = value.as_bytes()?;
                if b.len() != 16 {
                    return Err(ExportError::BadKey("key_data must be 16 bytes"));
                }
                let mut k = [0u8; 16];
                k.copy_from_slice(b);
                key_data = Some(k);
            }
            2 => {
                let v = value.as_int32()?;
                if !(0..=7).contains(&v) {
                    return Err(ExportError::BadKey("transmission_risk_level out of range"));
                }
                risk = v as u8;
            }
            3 => {
                let v = value.as_int32()?;
                if v < 0 {
                    return Err(ExportError::BadKey(
                        "negative rolling_start_interval_number",
                    ));
                }
                start = Some(v as u32);
            }
            4 => {
                let v = value.as_int32()?;
                if !(1..=144).contains(&v) {
                    return Err(ExportError::BadKey("rolling_period out of range"));
                }
                period = v as u32;
            }
            _ => {}
        }
    }
    let key = key_data.ok_or(ExportError::BadKey("missing key_data"))?;
    let start = start.ok_or(ExportError::BadKey("missing rolling_start_interval_number"))?;
    Ok(DiagnosisKey {
        tek: TemporaryExposureKey {
            key,
            rolling_start_interval_number: start,
            rolling_period: period,
        },
        transmission_risk_level: risk,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::EnIntervalNumber;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_keys(n: usize) -> Vec<DiagnosisKey> {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        (0..n)
            .map(|i| {
                let tek = TemporaryExposureKey::generate(
                    &mut rng,
                    EnIntervalNumber(144 * (18_400 + i as u32)),
                );
                DiagnosisKey::new(tek, (i % 8) as u8)
            })
            .collect()
    }

    #[test]
    fn header_is_sixteen_bytes() {
        assert_eq!(EXPORT_HEADER.len(), 16);
        assert!(EXPORT_HEADER.starts_with(b"EK Export v1"));
    }

    #[test]
    fn roundtrip_empty() {
        let export = TemporaryExposureKeyExport::new_de(1_592_784_000, 1_592_870_400, vec![]);
        let bytes = export.encode();
        assert_eq!(&bytes[..16], EXPORT_HEADER);
        let back = TemporaryExposureKeyExport::decode(&bytes).unwrap();
        assert_eq!(back, export);
    }

    #[test]
    fn roundtrip_with_keys() {
        let export =
            TemporaryExposureKeyExport::new_de(1_592_784_000, 1_592_870_400, sample_keys(25));
        let back = TemporaryExposureKeyExport::decode(&export.encode()).unwrap();
        assert_eq!(back, export);
        assert_eq!(back.keys.len(), 25);
        assert_eq!(back.region, "DE");
    }

    #[test]
    fn roundtrip_with_signature_info() {
        let mut export = TemporaryExposureKeyExport::new_de(0, 1, sample_keys(2));
        export.signature_infos.push(vec![1, 2, 3, 4, 5]);
        let back = TemporaryExposureKeyExport::decode(&export.encode()).unwrap();
        assert_eq!(back.signature_infos, vec![vec![1, 2, 3, 4, 5]]);
    }

    #[test]
    fn rejects_short_file() {
        assert_eq!(
            TemporaryExposureKeyExport::decode(b"EK"),
            Err(ExportError::TooShort)
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = TemporaryExposureKeyExport::new_de(0, 1, vec![]).encode();
        bytes[0] = b'X';
        assert_eq!(
            TemporaryExposureKeyExport::decode(&bytes),
            Err(ExportError::BadHeader)
        );
    }

    #[test]
    fn rejects_wrong_key_length() {
        // Hand-build an export with a 15-byte key.
        let mut k = Writer::new();
        k.field_bytes(1, &[0u8; 15]);
        k.field_int32(3, 100);
        let mut msg = Writer::new();
        msg.field_message(7, &k);
        let mut bytes = EXPORT_HEADER.to_vec();
        bytes.extend_from_slice(&msg.finish());
        assert_eq!(
            TemporaryExposureKeyExport::decode(&bytes),
            Err(ExportError::BadKey("key_data must be 16 bytes"))
        );
    }

    #[test]
    fn rejects_missing_key_data() {
        let mut k = Writer::new();
        k.field_int32(3, 100);
        let mut msg = Writer::new();
        msg.field_message(7, &k);
        let mut bytes = EXPORT_HEADER.to_vec();
        bytes.extend_from_slice(&msg.finish());
        assert_eq!(
            TemporaryExposureKeyExport::decode(&bytes),
            Err(ExportError::BadKey("missing key_data"))
        );
    }

    #[test]
    fn rejects_out_of_range_risk() {
        let mut k = Writer::new();
        k.field_bytes(1, &[0u8; 16]);
        k.field_int32(2, 9);
        k.field_int32(3, 100);
        let mut msg = Writer::new();
        msg.field_message(7, &k);
        let mut bytes = EXPORT_HEADER.to_vec();
        bytes.extend_from_slice(&msg.finish());
        assert!(matches!(
            TemporaryExposureKeyExport::decode(&bytes),
            Err(ExportError::BadKey(_))
        ));
    }

    #[test]
    fn default_rolling_period_applies() {
        // Omit field 4; decoded key must default to 144.
        let mut k = Writer::new();
        k.field_bytes(1, &[7u8; 16]);
        k.field_int32(3, 2_650_000);
        let mut msg = Writer::new();
        msg.field_message(7, &k);
        let mut bytes = EXPORT_HEADER.to_vec();
        bytes.extend_from_slice(&msg.finish());
        let export = TemporaryExposureKeyExport::decode(&bytes).unwrap();
        assert_eq!(export.keys[0].tek.rolling_period, 144);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let mut msg = Writer::new();
        msg.field_fixed64(1, 10);
        msg.field_fixed64(2, 20);
        msg.field_varint(99, 12345); // unknown field
        let mut bytes = EXPORT_HEADER.to_vec();
        bytes.extend_from_slice(&msg.finish());
        let export = TemporaryExposureKeyExport::decode(&bytes).unwrap();
        assert_eq!(export.start_timestamp, 10);
        assert_eq!(export.end_timestamp, 20);
    }

    #[test]
    fn size_grows_linearly_with_keys() {
        let small = TemporaryExposureKeyExport::new_de(0, 1, sample_keys(10)).encoded_len();
        let large = TemporaryExposureKeyExport::new_de(0, 1, sample_keys(110)).encoded_len();
        let per_key = (large - small) as f64 / 100.0;
        // Each key record: 16 key bytes + tags/varints ≈ 28–32 bytes.
        assert!((24.0..40.0).contains(&per_key), "per-key size {per_key}");
    }
}
