//! A complete simulated phone running the Exposure Notification stack.
//!
//! [`Device`] ties the crate together into the lifecycle of Figure 1 of
//! the paper:
//!
//! 1. roll a fresh TEK every 24 h (volatile identifiers, §1),
//! 2. broadcast the current RPI + AEM over BLE every interval,
//! 3. scan and store others' RPIs for 14 days,
//! 4. after a positive test, disclose the last 14 days of TEKs as
//!    diagnosis keys (the upload in Fig. 1),
//! 5. download the day's key export from the CDN and run matching —
//!    the **daily download** that generates the HTTPS flows the paper
//!    measures at the vantage point.

use rand::RngCore;

use crate::advertisement::{metadata_v1, BleAdvertisement};
use crate::matching::{EncounterStore, ExposureMatch, MatchingEngine};
use crate::risk::ExposureConfiguration;
use crate::tek::{DiagnosisKey, TemporaryExposureKey};
use crate::time::{EnIntervalNumber, RETENTION_DAYS, TEK_ROLLING_PERIOD};

/// A simulated phone with the Exposure Notification framework enabled.
#[derive(Debug, Clone)]
pub struct Device {
    /// Stable simulation identifier (never transmitted — phones are only
    /// ever observable through their rotating RPIs).
    pub id: u64,
    /// BLE transmit power in dBm, used to build metadata.
    pub tx_power_dbm: i8,
    /// TEKs of the last 14 days, oldest first.
    teks: Vec<TemporaryExposureKey>,
    /// Encounter history.
    store: EncounterStore,
    /// Matching engine (risk configuration).
    engine: MatchingEngine,
}

impl Device {
    /// Creates a device with the default CWA-like risk configuration.
    pub fn new(id: u64) -> Self {
        Device {
            id,
            tx_power_dbm: -8,
            teks: Vec::new(),
            store: EncounterStore::new(),
            engine: MatchingEngine::new(ExposureConfiguration::default()),
        }
    }

    /// Ensures a TEK exists covering `now`, generating one at the daily
    /// boundary if needed, and prunes TEKs beyond the retention window.
    pub fn roll_key_if_needed<R: RngCore>(&mut self, rng: &mut R, now: EnIntervalNumber) {
        let covered = self.teks.iter().any(|t| t.covers(now));
        if !covered {
            self.teks.push(TemporaryExposureKey::generate(rng, now));
        }
        let horizon = now.0.saturating_sub(RETENTION_DAYS * TEK_ROLLING_PERIOD);
        self.teks
            .retain(|t| t.rolling_start_interval_number + t.rolling_period > horizon);
    }

    /// The advertisement this device broadcasts during `now`.
    ///
    /// # Panics
    ///
    /// Panics if no TEK covers `now`; call
    /// [`Device::roll_key_if_needed`] first.
    pub fn advertise(&self, now: EnIntervalNumber) -> BleAdvertisement {
        let tek = self
            .teks
            .iter()
            .find(|t| t.covers(now))
            .expect("no TEK covers the current interval; call roll_key_if_needed");
        let rpi = tek.rpi(now);
        let aem = tek.encrypt_metadata(now, &metadata_v1(self.tx_power_dbm));
        BleAdvertisement::new(rpi, aem)
    }

    /// Processes a received advertisement: stores the RPI with measured
    /// attenuation and sighting duration.
    pub fn observe(
        &mut self,
        adv: &BleAdvertisement,
        now: EnIntervalNumber,
        attenuation_db: u8,
        duration_minutes: u32,
    ) {
        self.store
            .record(adv.rpi, now, attenuation_db, duration_minutes);
    }

    /// Nightly maintenance: expire encounters older than 14 days.
    pub fn expire(&mut self, now: EnIntervalNumber) {
        self.store.expire(now);
    }

    /// After a verified positive test, discloses all retained TEKs as
    /// diagnosis keys (the user consents per §1 of the paper). The TEK of
    /// the current day may be withheld by the framework; we disclose keys
    /// strictly *before* `today_start` to match that behaviour.
    pub fn upload_diagnosis_keys(
        &self,
        today_start: EnIntervalNumber,
        transmission_risk_level: u8,
    ) -> Vec<DiagnosisKey> {
        self.teks
            .iter()
            .filter(|t| t.rolling_start_interval_number < today_start.rolling_period_start().0)
            .map(|t| DiagnosisKey::new(*t, transmission_risk_level))
            .collect()
    }

    /// The daily key-export download + matching pass. This is the action
    /// whose HTTPS flow the paper's vantage point records.
    pub fn check_exposure(
        &self,
        downloaded_keys: &[DiagnosisKey],
        now: EnIntervalNumber,
    ) -> Vec<ExposureMatch> {
        self.engine.match_keys(downloaded_keys, &self.store, now)
    }

    /// Number of encounters currently stored.
    pub fn encounter_count(&self) -> usize {
        self.store.len()
    }

    /// Number of TEKs currently retained.
    pub fn tek_count(&self) -> usize {
        self.teks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const DAY: u32 = TEK_ROLLING_PERIOD;

    #[test]
    fn rolls_one_key_per_day() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut dev = Device::new(1);
        for day in 0..5u32 {
            for step in [0u32, 50, 100] {
                dev.roll_key_if_needed(&mut rng, EnIntervalNumber(1000 * DAY + day * DAY + step));
            }
        }
        assert_eq!(dev.tek_count(), 5);
    }

    #[test]
    fn old_keys_pruned_after_retention() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut dev = Device::new(1);
        for day in 0..20u32 {
            dev.roll_key_if_needed(&mut rng, EnIntervalNumber(1000 * DAY + day * DAY));
        }
        assert!(dev.tek_count() <= 15, "got {}", dev.tek_count());
    }

    #[test]
    fn advertisement_changes_every_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut dev = Device::new(1);
        let t0 = EnIntervalNumber(1000 * DAY);
        dev.roll_key_if_needed(&mut rng, t0);
        let a = dev.advertise(t0);
        let b = dev.advertise(t0.advance(1));
        assert_ne!(a.rpi, b.rpi, "RPI must rotate every 10 minutes");
    }

    #[test]
    fn end_to_end_exposure_notification() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut alice = Device::new(1);
        let mut bob = Device::new(2);

        // Day 0: Alice and Bob meet for 3 intervals, 25 minutes total.
        let day0 = EnIntervalNumber(1000 * DAY);
        for i in 0..3u32 {
            let t = day0.advance(60 + i);
            alice.roll_key_if_needed(&mut rng, t);
            bob.roll_key_if_needed(&mut rng, t);
            let from_alice = alice.advertise(t);
            let from_bob = bob.advertise(t);
            bob.observe(&from_alice, t, 25, 9);
            alice.observe(&from_bob, t, 25, 9);
        }
        assert_eq!(bob.encounter_count(), 3);

        // Day 2: Alice tests positive and uploads her keys.
        let day2 = EnIntervalNumber(1002 * DAY);
        alice.roll_key_if_needed(&mut rng, day2);
        let uploaded = alice.upload_diagnosis_keys(day2, 6);
        assert!(!uploaded.is_empty());
        // Current-day key withheld.
        assert!(uploaded
            .iter()
            .all(|k| k.tek.rolling_start_interval_number < day2.rolling_period_start().0));

        // Bob downloads the export and matches.
        let matches = bob.check_exposure(&uploaded, day2);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].matched_intervals, 3);
        assert_eq!(matches[0].duration_minutes, 27);
        assert!(
            matches[0].risk_score.0 > 0,
            "close long contact must flag risk"
        );

        // A third device that never met Alice stays clear.
        let mut carol = Device::new(3);
        carol.roll_key_if_needed(&mut rng, day2);
        assert!(carol.check_exposure(&uploaded, day2).is_empty());
    }

    #[test]
    fn observers_cannot_link_across_intervals() {
        // The whole point of the rotating-RPI design: two sightings of the
        // same phone in different intervals look unrelated without the TEK.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut dev = Device::new(1);
        let t = EnIntervalNumber(1000 * DAY);
        dev.roll_key_if_needed(&mut rng, t);
        let sightings: Vec<_> = (0..4u32).map(|i| dev.advertise(t.advance(i))).collect();
        for w in sightings.windows(2) {
            assert_ne!(w[0].rpi, w[1].rpi);
            assert_ne!(w[0].aem, w[1].aem);
        }
    }
}
