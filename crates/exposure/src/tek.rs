//! Temporary Exposure Keys and the EN v1.2 key schedule.
//!
//! Per the Exposure Notification Cryptography Specification v1.2:
//!
//! * A fresh 16-byte **TEK** is drawn from a CRNG at each rolling-period
//!   boundary (once per 24 h) and is identified by its
//!   `rolling_start_interval_number`.
//! * The **Rolling Proximity Identifier Key** is
//!   `RPIK = HKDF-SHA256(tek, salt=None, info="EN-RPIK", 16)`.
//! * The **Rolling Proximity Identifier** broadcast during interval `j` is
//!   `RPI_j = AES128(RPIK, PaddedData_j)` with
//!   `PaddedData_j = "EN-RPI" ‖ 0x000000000000 ‖ ENIN_j(LE)`.
//! * The **Associated Encrypted Metadata Key** is
//!   `AEMK = HKDF-SHA256(tek, salt=None, info="EN-AEMK", 16)` and
//!   metadata is encrypted as `AEM = AES128-CTR(AEMK, RPI_j, metadata)`.

use cwa_crypto::{aes128_ctr, hkdf_sha256, Aes128};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::time::{EnIntervalNumber, TEK_ROLLING_PERIOD};

/// HKDF info string for RPIK derivation (spec §3.3).
const RPIK_INFO: &[u8] = b"EN-RPIK";
/// HKDF info string for AEMK derivation (spec §3.5).
const AEMK_INFO: &[u8] = b"EN-AEMK";
/// Fixed prefix of the padded data encrypted into an RPI (spec §3.4).
const RPI_PREFIX: &[u8; 6] = b"EN-RPI";

/// A 16-byte Rolling Proximity Identifier as broadcast over BLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RollingProximityIdentifier(pub [u8; 16]);

/// A Temporary Exposure Key: the per-day secret from which all of a
/// phone's pseudonymous identifiers for that day are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TemporaryExposureKey {
    /// The 16 random key bytes.
    pub key: [u8; 16],
    /// First interval number this key is valid for (aligned to a
    /// 144-interval boundary for keys generated at midnight).
    pub rolling_start_interval_number: u32,
    /// Number of intervals the key is valid for (normally 144).
    pub rolling_period: u32,
}

impl TemporaryExposureKey {
    /// Generates a fresh TEK valid from the rolling-period boundary
    /// enclosing `now`.
    pub fn generate<R: RngCore>(rng: &mut R, now: EnIntervalNumber) -> Self {
        let mut key = [0u8; 16];
        rng.fill_bytes(&mut key);
        TemporaryExposureKey {
            key,
            rolling_start_interval_number: now.rolling_period_start().0,
            rolling_period: TEK_ROLLING_PERIOD,
        }
    }

    /// Derives the Rolling Proximity Identifier Key (spec §3.3).
    pub fn rpik(&self) -> [u8; 16] {
        let okm = hkdf_sha256(None, &self.key, RPIK_INFO, 16);
        let mut out = [0u8; 16];
        out.copy_from_slice(&okm);
        out
    }

    /// Derives the Associated Encrypted Metadata Key (spec §3.5).
    pub fn aemk(&self) -> [u8; 16] {
        let okm = hkdf_sha256(None, &self.key, AEMK_INFO, 16);
        let mut out = [0u8; 16];
        out.copy_from_slice(&okm);
        out
    }

    /// Derives the RPI for interval `enin` (spec §3.4).
    ///
    /// Note: the spec derives RPIs for any interval within the key's
    /// validity window; callers should check [`Self::covers`] first when
    /// that semantic matters.
    pub fn rpi(&self, enin: EnIntervalNumber) -> RollingProximityIdentifier {
        let aes = Aes128::new(&self.rpik());
        RollingProximityIdentifier(aes.encrypt_block(&padded_data(enin)))
    }

    /// Derives all RPIs over the key's validity window, in interval order.
    pub fn all_rpis(&self) -> Vec<RollingProximityIdentifier> {
        let aes = Aes128::new(&self.rpik());
        (0..self.rolling_period)
            .map(|i| {
                let enin = EnIntervalNumber(self.rolling_start_interval_number + i);
                RollingProximityIdentifier(aes.encrypt_block(&padded_data(enin)))
            })
            .collect()
    }

    /// True if `enin` lies in this key's validity window.
    pub fn covers(&self, enin: EnIntervalNumber) -> bool {
        enin.within(
            EnIntervalNumber(self.rolling_start_interval_number),
            self.rolling_period,
        )
    }

    /// Encrypts 4 bytes of BLE metadata into the Associated Encrypted
    /// Metadata for the RPI of interval `enin` (spec §3.6).
    pub fn encrypt_metadata(&self, enin: EnIntervalNumber, metadata: &[u8; 4]) -> [u8; 4] {
        let rpi = self.rpi(enin);
        let ct = aes128_ctr(&self.aemk(), &rpi.0, metadata);
        let mut out = [0u8; 4];
        out.copy_from_slice(&ct);
        out
    }

    /// Decrypts Associated Encrypted Metadata. Only possible once the TEK
    /// is published as a diagnosis key — by design, passive observers
    /// cannot read the metadata.
    pub fn decrypt_metadata(&self, rpi: &RollingProximityIdentifier, aem: &[u8; 4]) -> [u8; 4] {
        let pt = aes128_ctr(&self.aemk(), &rpi.0, aem);
        let mut out = [0u8; 4];
        out.copy_from_slice(&pt);
        out
    }
}

/// Builds `PaddedData_j = "EN-RPI" ‖ 0x00⁶ ‖ ENIN_j(LE)` (spec §3.4).
fn padded_data(enin: EnIntervalNumber) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[..6].copy_from_slice(RPI_PREFIX);
    block[12..16].copy_from_slice(&enin.to_le_bytes());
    block
}

/// A diagnosis key: a TEK that its owner, after a verified positive test,
/// chose to upload. Carries the transmission-risk level assigned by the
/// health authority verification flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiagnosisKey {
    /// The disclosed temporary exposure key.
    pub tek: TemporaryExposureKey,
    /// Transmission risk level 0–7 (v1 semantics).
    pub transmission_risk_level: u8,
}

impl DiagnosisKey {
    /// Wraps a TEK with a transmission-risk level, clamping to 0–7.
    pub fn new(tek: TemporaryExposureKey, transmission_risk_level: u8) -> Self {
        DiagnosisKey {
            tek,
            transmission_risk_level: transmission_risk_level.min(7),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tek_fixed() -> TemporaryExposureKey {
        TemporaryExposureKey {
            key: *b"0123456789abcdef",
            rolling_start_interval_number: 144 * 18_420,
            rolling_period: TEK_ROLLING_PERIOD,
        }
    }

    #[test]
    fn generate_aligns_to_rolling_boundary() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let now = EnIntervalNumber(144 * 7 + 93);
        let tek = TemporaryExposureKey::generate(&mut rng, now);
        assert_eq!(tek.rolling_start_interval_number, 144 * 7);
        assert_eq!(tek.rolling_period, 144);
    }

    #[test]
    fn generate_is_seeded_deterministic() {
        let now = EnIntervalNumber(144);
        let a = TemporaryExposureKey::generate(&mut ChaCha8Rng::seed_from_u64(9), now);
        let b = TemporaryExposureKey::generate(&mut ChaCha8Rng::seed_from_u64(9), now);
        let c = TemporaryExposureKey::generate(&mut ChaCha8Rng::seed_from_u64(10), now);
        assert_eq!(a.key, b.key);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn rpik_and_aemk_differ_and_are_stable() {
        let tek = tek_fixed();
        assert_ne!(tek.rpik(), tek.aemk());
        assert_eq!(tek.rpik(), tek.rpik());
    }

    #[test]
    fn padded_data_layout() {
        let pd = padded_data(EnIntervalNumber(0x0403_0201));
        assert_eq!(&pd[..6], b"EN-RPI");
        assert_eq!(&pd[6..12], &[0u8; 6]);
        assert_eq!(&pd[12..], &[1, 2, 3, 4]);
    }

    #[test]
    fn rpis_unique_within_day() {
        let tek = tek_fixed();
        let rpis = tek.all_rpis();
        assert_eq!(rpis.len(), 144);
        let set: std::collections::HashSet<_> = rpis.iter().collect();
        assert_eq!(set.len(), 144, "all RPIs of a day must be distinct");
    }

    #[test]
    fn all_rpis_matches_single_rpi() {
        let tek = tek_fixed();
        let rpis = tek.all_rpis();
        for i in [0u32, 1, 77, 143] {
            let enin = EnIntervalNumber(tek.rolling_start_interval_number + i);
            assert_eq!(rpis[i as usize], tek.rpi(enin));
        }
    }

    #[test]
    fn different_teks_give_disjoint_rpis() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let now = EnIntervalNumber(144 * 5);
        let a = TemporaryExposureKey::generate(&mut rng, now);
        let b = TemporaryExposureKey::generate(&mut rng, now);
        let set_a: std::collections::HashSet<_> = a.all_rpis().into_iter().collect();
        assert!(b.all_rpis().iter().all(|r| !set_a.contains(r)));
    }

    #[test]
    fn covers_window() {
        let tek = tek_fixed();
        let start = tek.rolling_start_interval_number;
        assert!(tek.covers(EnIntervalNumber(start)));
        assert!(tek.covers(EnIntervalNumber(start + 143)));
        assert!(!tek.covers(EnIntervalNumber(start + 144)));
        assert!(!tek.covers(EnIntervalNumber(start - 1)));
    }

    #[test]
    fn metadata_roundtrip() {
        let tek = tek_fixed();
        let enin = EnIntervalNumber(tek.rolling_start_interval_number + 10);
        let meta = [0x40, 0xF4, 0x00, 0x00]; // version 1.0, tx power -12 dBm
        let aem = tek.encrypt_metadata(enin, &meta);
        assert_ne!(aem, meta);
        let rpi = tek.rpi(enin);
        assert_eq!(tek.decrypt_metadata(&rpi, &aem), meta);
    }

    #[test]
    fn metadata_ciphertext_changes_with_interval() {
        // Same metadata encrypted in different intervals must differ (the
        // RPI acts as the CTR IV), otherwise metadata would be linkable.
        let tek = tek_fixed();
        let meta = [1, 2, 3, 4];
        let a = tek.encrypt_metadata(EnIntervalNumber(tek.rolling_start_interval_number), &meta);
        let b = tek.encrypt_metadata(
            EnIntervalNumber(tek.rolling_start_interval_number + 1),
            &meta,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn diagnosis_key_clamps_risk() {
        let dk = DiagnosisKey::new(tek_fixed(), 200);
        assert_eq!(dk.transmission_risk_level, 7);
    }
}
