//! Signed key exports — the `export.bin` / `export.sig` pair the real
//! CWA CDN serves.
//!
//! Each diagnosis-key export ships with a detached signature file: a
//! `TEKSignatureList` naming the verification key (bundle id, key id,
//! key version, algorithm OID) plus an ECDSA-P256-over-SHA256 signature
//! of the raw `export.bin` bytes. The app verifies against pinned
//! public keys before matching — preventing a compromised CDN from
//! injecting fake diagnosis keys. Fully implemented here on
//! `cwa-crypto`'s P-256.

use serde::{Deserialize, Serialize};

use bytes::Bytes;
use cwa_crypto::p256::{Signature, SigningKey, VerifyingKey};

use crate::export::{ExportError, TemporaryExposureKeyExport};
use crate::protobuf::{Reader, Writer};

/// The ECDSA-with-SHA256 algorithm OID, as the real format carries it.
pub const ALGORITHM_OID: &str = "1.2.840.10045.4.3.2";

/// Metadata identifying the verification key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureInfo {
    /// App bundle id the key is pinned for.
    pub app_bundle_id: String,
    /// Key identifier (e.g. country code).
    pub verification_key_id: String,
    /// Key version (rotations bump this).
    pub verification_key_version: String,
    /// Signature algorithm OID.
    pub signature_algorithm: String,
}

impl Default for SignatureInfo {
    fn default() -> Self {
        SignatureInfo {
            app_bundle_id: "de.rki.coronawarnapp".to_owned(),
            verification_key_id: "DE".to_owned(),
            verification_key_version: "v1".to_owned(),
            signature_algorithm: ALGORITHM_OID.to_owned(),
        }
    }
}

/// The export.bin + export.sig pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignedExport {
    /// The raw export file bytes.
    pub export_bin: Vec<u8>,
    /// The detached signature file bytes (protobuf `TEKSignatureList`).
    pub export_sig: Vec<u8>,
}

/// Signature verification failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SignatureError {
    /// export.sig did not parse.
    MalformedSignatureFile,
    /// No signature entry matched the expected key id/version.
    NoMatchingKey,
    /// The ECDSA verification failed.
    BadSignature,
    /// The export itself did not parse after successful verification.
    Export(ExportError),
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::MalformedSignatureFile => write!(f, "malformed export.sig"),
            SignatureError::NoMatchingKey => write!(f, "no signature for the pinned key"),
            SignatureError::BadSignature => write!(f, "ECDSA verification failed"),
            SignatureError::Export(e) => write!(f, "export parse error after verify: {e}"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// Signs an export, producing the bin/sig file pair.
pub fn sign_export(
    export: &TemporaryExposureKeyExport,
    key: &SigningKey,
    info: &SignatureInfo,
) -> SignedExport {
    let export_bin = export.encode();
    let signature = key.sign(&export_bin);

    // TEKSignatureList { repeated TEKSignature signatures = 1 }
    // TEKSignature { SignatureInfo signature_info = 1;
    //                int32 batch_num = 2; int32 batch_size = 3;
    //                bytes signature = 4 }
    let mut si = Writer::new();
    si.field_string(1, &info.app_bundle_id);
    si.field_string(3, &info.verification_key_version);
    si.field_string(4, &info.verification_key_id);
    si.field_string(5, &info.signature_algorithm);

    let mut tek_sig = Writer::new();
    tek_sig.field_message(1, &si);
    tek_sig.field_int32(2, export.batch_num);
    tek_sig.field_int32(3, export.batch_size);
    tek_sig.field_bytes(4, &signature.to_bytes());

    let mut list = Writer::new();
    list.field_message(1, &tek_sig);

    SignedExport {
        export_bin,
        export_sig: list.finish().to_vec(),
    }
}

/// Verifies the pair against a pinned key and, on success, parses the
/// export.
pub fn verify_export(
    signed: &SignedExport,
    pinned: &VerifyingKey,
    expected: &SignatureInfo,
) -> Result<TemporaryExposureKeyExport, SignatureError> {
    let mut list = Reader::new(Bytes::copy_from_slice(&signed.export_sig));
    while !list.is_done() {
        let (field, value) = list
            .field()
            .map_err(|_| SignatureError::MalformedSignatureFile)?;
        if field != 1 {
            continue;
        }
        let tek_sig = value
            .as_bytes()
            .map_err(|_| SignatureError::MalformedSignatureFile)?
            .clone();
        let mut r = Reader::new(tek_sig);
        let mut key_id = String::new();
        let mut key_version = String::new();
        let mut sig_bytes: Option<[u8; 64]> = None;
        while !r.is_done() {
            let (f, v) = r
                .field()
                .map_err(|_| SignatureError::MalformedSignatureFile)?;
            match f {
                1 => {
                    let mut info_r = Reader::new(
                        v.as_bytes()
                            .map_err(|_| SignatureError::MalformedSignatureFile)?
                            .clone(),
                    );
                    while !info_r.is_done() {
                        let (inf, inv) = info_r
                            .field()
                            .map_err(|_| SignatureError::MalformedSignatureFile)?;
                        let text = |v: &crate::protobuf::FieldValue| {
                            v.as_bytes()
                                .ok()
                                .and_then(|b| String::from_utf8(b.to_vec()).ok())
                                .unwrap_or_default()
                        };
                        match inf {
                            3 => key_version = text(&inv),
                            4 => key_id = text(&inv),
                            _ => {}
                        }
                    }
                }
                4 => {
                    let b = v
                        .as_bytes()
                        .map_err(|_| SignatureError::MalformedSignatureFile)?;
                    if b.len() == 64 {
                        let mut arr = [0u8; 64];
                        arr.copy_from_slice(b);
                        sig_bytes = Some(arr);
                    }
                }
                _ => {}
            }
        }

        if key_id != expected.verification_key_id
            || key_version != expected.verification_key_version
        {
            continue;
        }
        let Some(sig) = sig_bytes else { continue };
        if !pinned.verify(&signed.export_bin, &Signature::from_bytes(&sig)) {
            return Err(SignatureError::BadSignature);
        }
        return TemporaryExposureKeyExport::decode(&signed.export_bin)
            .map_err(SignatureError::Export);
    }
    Err(SignatureError::NoMatchingKey)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tek::{DiagnosisKey, TemporaryExposureKey};
    use crate::time::EnIntervalNumber;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn export(n: usize) -> TemporaryExposureKeyExport {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let keys = (0..n)
            .map(|_| {
                DiagnosisKey::new(
                    TemporaryExposureKey::generate(&mut rng, EnIntervalNumber(144 * 18_400)),
                    5,
                )
            })
            .collect();
        TemporaryExposureKeyExport::new_de(0, 86_400, keys)
    }

    fn backend_key() -> SigningKey {
        let mut secret = [0u8; 32];
        secret[31] = 0x42;
        secret[0] = 0x01;
        SigningKey::from_bytes(&secret)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let export = export(12);
        let key = backend_key();
        let info = SignatureInfo::default();
        let signed = sign_export(&export, &key, &info);
        let verified = verify_export(&signed, &key.verifying_key(), &info).unwrap();
        assert_eq!(verified, export);
    }

    #[test]
    fn tampered_export_rejected() {
        let key = backend_key();
        let info = SignatureInfo::default();
        let mut signed = sign_export(&export(5), &key, &info);
        // Flip one byte inside a key record.
        let idx = signed.export_bin.len() - 5;
        signed.export_bin[idx] ^= 0x01;
        assert_eq!(
            verify_export(&signed, &key.verifying_key(), &info),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn wrong_pinned_key_rejected() {
        let key = backend_key();
        let mut other_secret = [0u8; 32];
        other_secret[31] = 0x43;
        let other = SigningKey::from_bytes(&other_secret);
        let info = SignatureInfo::default();
        let signed = sign_export(&export(3), &key, &info);
        assert_eq!(
            verify_export(&signed, &other.verifying_key(), &info),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn key_id_mismatch_is_no_matching_key() {
        let key = backend_key();
        let signed = sign_export(&export(3), &key, &SignatureInfo::default());
        let expect_at = SignatureInfo {
            verification_key_id: "AT".to_owned(),
            ..SignatureInfo::default()
        };
        assert_eq!(
            verify_export(&signed, &key.verifying_key(), &expect_at),
            Err(SignatureError::NoMatchingKey)
        );
    }

    #[test]
    fn garbage_sig_file_rejected() {
        let key = backend_key();
        let info = SignatureInfo::default();
        let mut signed = sign_export(&export(3), &key, &info);
        signed.export_sig = vec![0xff, 0xff, 0xff];
        assert!(matches!(
            verify_export(&signed, &key.verifying_key(), &info),
            Err(SignatureError::MalformedSignatureFile) | Err(SignatureError::NoMatchingKey)
        ));
    }

    #[test]
    fn signature_file_is_small() {
        let key = backend_key();
        let signed = sign_export(&export(100), &key, &SignatureInfo::default());
        assert!(
            signed.export_sig.len() < 200,
            "sig file is metadata + 64 sig bytes: {}",
            signed.export_sig.len()
        );
    }
}
