//! Diagnosis-key matching — the on-phone core of decentralized tracing.
//!
//! The phone keeps an **encounter store** of every Rolling Proximity
//! Identifier it heard over BLE in the last 14 days (with interval,
//! attenuation and accumulated duration). When the app downloads the
//! day's diagnosis-key export from the CDN (the flows the paper
//! measures), the matching engine re-derives all 144 RPIs of every
//! published TEK and intersects them with the store. Matching keys yield
//! [`ExposureMatch`]es, which risk scoring (see [`crate::risk`]) turns
//! into the user-facing risk status.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::risk::{ExposureConfiguration, RiskScore};
use crate::tek::{DiagnosisKey, RollingProximityIdentifier};
use crate::time::{EnIntervalNumber, RETENTION_DAYS, TEK_ROLLING_PERIOD};

/// One remembered BLE sighting (aggregated per RPI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encounter {
    /// Interval in which the RPI was (first) heard.
    pub interval: EnIntervalNumber,
    /// Representative signal attenuation in dB (TX power − RSSI).
    pub attenuation_db: u8,
    /// Accumulated sighting duration in minutes.
    pub duration_minutes: u32,
}

/// The phone's local encounter history.
///
/// RPIs are pseudonymous and never leave the device; this mirrors the
/// privacy property the paper highlights ("all contact tracing data never
/// leaves the phone").
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct EncounterStore {
    encounters: HashMap<RollingProximityIdentifier, Encounter>,
}

impl EncounterStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sighting of `rpi`, merging with any previous sighting of
    /// the same RPI (duration accumulates; attenuation keeps the minimum,
    /// i.e. the closest observed proximity).
    pub fn record(
        &mut self,
        rpi: RollingProximityIdentifier,
        interval: EnIntervalNumber,
        attenuation_db: u8,
        duration_minutes: u32,
    ) {
        self.encounters
            .entry(rpi)
            .and_modify(|e| {
                e.duration_minutes += duration_minutes;
                e.attenuation_db = e.attenuation_db.min(attenuation_db);
            })
            .or_insert(Encounter {
                interval,
                attenuation_db,
                duration_minutes,
            });
    }

    /// Number of distinct RPIs remembered.
    pub fn len(&self) -> usize {
        self.encounters.len()
    }

    /// True if no encounters are stored.
    pub fn is_empty(&self) -> bool {
        self.encounters.is_empty()
    }

    /// Drops encounters older than the 14-day retention window relative
    /// to `now` (the paper, §1: identifiers are stored for 14 days).
    pub fn expire(&mut self, now: EnIntervalNumber) {
        let horizon = now.0.saturating_sub(RETENTION_DAYS * TEK_ROLLING_PERIOD);
        self.encounters.retain(|_, e| e.interval.0 >= horizon);
    }

    /// Looks up a single RPI.
    pub fn get(&self, rpi: &RollingProximityIdentifier) -> Option<&Encounter> {
        self.encounters.get(rpi)
    }
}

/// A confirmed exposure: a diagnosis key whose RPIs intersect the local
/// encounter history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureMatch {
    /// Day the matched key was active (its rolling start interval).
    pub key_start: EnIntervalNumber,
    /// Transmission risk level carried by the diagnosis key.
    pub transmission_risk_level: u8,
    /// Total matched duration across intervals, minutes.
    pub duration_minutes: u32,
    /// Closest (minimum) attenuation over the matched sightings, dB.
    pub min_attenuation_db: u8,
    /// Number of distinct intervals that matched.
    pub matched_intervals: u32,
    /// Total risk score under the engine's configuration.
    pub risk_score: RiskScore,
}

/// The matching engine: configuration plus entry points.
#[derive(Debug, Clone, Default)]
pub struct MatchingEngine {
    /// Risk configuration used to score matches.
    pub config: ExposureConfiguration,
}

impl MatchingEngine {
    /// Creates an engine with the given risk configuration.
    pub fn new(config: ExposureConfiguration) -> Self {
        MatchingEngine { config }
    }

    /// Matches a batch of diagnosis keys against the local store.
    ///
    /// `now` is used for days-since-exposure scoring. Returns one
    /// [`ExposureMatch`] per *matching key* (a real exposure typically
    /// matches several consecutive RPIs of the same key — these aggregate
    /// into one match, like the framework's `ExposureInformation`).
    pub fn match_keys(
        &self,
        keys: &[DiagnosisKey],
        store: &EncounterStore,
        now: EnIntervalNumber,
    ) -> Vec<ExposureMatch> {
        let mut out = Vec::new();
        for dk in keys {
            let mut duration = 0u32;
            let mut min_att = u8::MAX;
            let mut matched = 0u32;
            for rpi in dk.tek.all_rpis() {
                if let Some(enc) = store.get(&rpi) {
                    duration += enc.duration_minutes;
                    min_att = min_att.min(enc.attenuation_db);
                    matched += 1;
                }
            }
            if matched > 0 {
                let days = now.days_since(EnIntervalNumber(dk.tek.rolling_start_interval_number));
                let risk_score =
                    self.config
                        .score(min_att, days, duration, dk.transmission_risk_level);
                out.push(ExposureMatch {
                    key_start: EnIntervalNumber(dk.tek.rolling_start_interval_number),
                    transmission_risk_level: dk.transmission_risk_level,
                    duration_minutes: duration,
                    min_attenuation_db: min_att,
                    matched_intervals: matched,
                    risk_score,
                });
            }
        }
        out
    }

    /// Convenience: the maximum risk score over all matches (the value
    /// the app compares against its "increased risk" threshold).
    pub fn max_risk(
        &self,
        keys: &[DiagnosisKey],
        store: &EncounterStore,
        now: EnIntervalNumber,
    ) -> RiskScore {
        self.match_keys(keys, store, now)
            .into_iter()
            .map(|m| m.risk_score)
            .max()
            .unwrap_or(RiskScore(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tek::TemporaryExposureKey;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tek_at(day: u32, rng: &mut ChaCha8Rng) -> TemporaryExposureKey {
        TemporaryExposureKey::generate(rng, EnIntervalNumber(day * TEK_ROLLING_PERIOD))
    }

    #[test]
    fn record_and_merge() {
        let mut store = EncounterStore::new();
        let rpi = RollingProximityIdentifier([1u8; 16]);
        store.record(rpi, EnIntervalNumber(100), 50, 5);
        store.record(rpi, EnIntervalNumber(100), 40, 7);
        let e = store.get(&rpi).unwrap();
        assert_eq!(e.duration_minutes, 12);
        assert_eq!(e.attenuation_db, 40);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn expiry_honours_retention() {
        let mut store = EncounterStore::new();
        let old = RollingProximityIdentifier([1u8; 16]);
        let fresh = RollingProximityIdentifier([2u8; 16]);
        let now = EnIntervalNumber(TEK_ROLLING_PERIOD * 100);
        store.record(
            old,
            EnIntervalNumber(now.0 - 15 * TEK_ROLLING_PERIOD),
            40,
            10,
        );
        store.record(
            fresh,
            EnIntervalNumber(now.0 - 13 * TEK_ROLLING_PERIOD),
            40,
            10,
        );
        store.expire(now);
        assert!(
            store.get(&old).is_none(),
            "15-day-old encounter must expire"
        );
        assert!(
            store.get(&fresh).is_some(),
            "13-day-old encounter must remain"
        );
    }

    #[test]
    fn match_found_for_contact() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let infected_tek = tek_at(1000, &mut rng);
        let now = EnIntervalNumber(1002 * TEK_ROLLING_PERIOD);

        // The victim heard three consecutive RPIs of the infected phone.
        let mut store = EncounterStore::new();
        for i in 10..13u32 {
            let enin = EnIntervalNumber(infected_tek.rolling_start_interval_number + i);
            store.record(infected_tek.rpi(enin), enin, 30, 10);
        }

        let engine = MatchingEngine::default();
        let keys = vec![DiagnosisKey::new(infected_tek, 5)];
        let matches = engine.match_keys(&keys, &store, now);
        assert_eq!(matches.len(), 1);
        let m = &matches[0];
        assert_eq!(m.matched_intervals, 3);
        assert_eq!(m.duration_minutes, 30);
        assert_eq!(m.min_attenuation_db, 30);
        assert!(m.risk_score.0 > 0);
    }

    #[test]
    fn no_match_for_stranger() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let infected = tek_at(1000, &mut rng);
        let bystander = tek_at(1000, &mut rng);
        let now = EnIntervalNumber(1001 * TEK_ROLLING_PERIOD);

        let mut store = EncounterStore::new();
        // Only heard the bystander.
        let enin = EnIntervalNumber(bystander.rolling_start_interval_number + 5);
        store.record(bystander.rpi(enin), enin, 30, 15);

        let engine = MatchingEngine::default();
        let matches = engine.match_keys(&[DiagnosisKey::new(infected, 5)], &store, now);
        assert!(matches.is_empty());
    }

    #[test]
    fn multiple_keys_yield_multiple_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = tek_at(1000, &mut rng);
        let b = tek_at(1001, &mut rng);
        let now = EnIntervalNumber(1003 * TEK_ROLLING_PERIOD);

        let mut store = EncounterStore::new();
        for tek in [&a, &b] {
            let enin = EnIntervalNumber(tek.rolling_start_interval_number + 1);
            store.record(tek.rpi(enin), enin, 25, 12);
        }

        let engine = MatchingEngine::default();
        let keys = vec![DiagnosisKey::new(a, 4), DiagnosisKey::new(b, 6)];
        let matches = engine.match_keys(&keys, &store, now);
        assert_eq!(matches.len(), 2);
        // More recent exposure (key b) should not score lower, all else equal.
        assert!(matches[1].risk_score >= matches[0].risk_score);
    }

    #[test]
    fn max_risk_zero_when_no_matches() {
        let engine = MatchingEngine::default();
        let store = EncounterStore::new();
        assert_eq!(
            engine.max_risk(&[], &store, EnIntervalNumber(0)),
            RiskScore(0)
        );
    }

    #[test]
    fn brief_distant_contact_scores_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let infected = tek_at(1000, &mut rng);
        let now = EnIntervalNumber(1001 * TEK_ROLLING_PERIOD);

        let mut store = EncounterStore::new();
        let enin = EnIntervalNumber(infected.rolling_start_interval_number);
        // Far away (high attenuation) and brief.
        store.record(infected.rpi(enin), enin, 80, 1);

        let engine = MatchingEngine::default();
        let matches = engine.match_keys(&[DiagnosisKey::new(infected, 5)], &store, now);
        assert_eq!(matches.len(), 1, "it still *matches*…");
        assert_eq!(matches[0].risk_score, RiskScore(0), "…but scores zero risk");
    }
}
