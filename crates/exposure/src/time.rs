//! Exposure Notification time discretization.
//!
//! The EN crypto spec v1.2 divides time into 10-minute windows:
//! `ENIntervalNumber(t) = floor(t / (60 * 10))` for a Unix timestamp `t`.
//! Temporary Exposure Keys roll every `TEKRollingPeriod = 144` intervals,
//! i.e. every 24 hours, aligned to interval boundaries.

use serde::{Deserialize, Serialize};

/// Seconds per exposure-notification interval (10 minutes).
pub const INTERVAL_SECONDS: u64 = 600;

/// Number of intervals a Temporary Exposure Key is valid for (24 h).
pub const TEK_ROLLING_PERIOD: u32 = 144;

/// Number of days keys/encounters are retained on the phone (§1 of the
/// paper: "Phones locally store these received identifiers for 14 days").
pub const RETENTION_DAYS: u32 = 14;

/// A 10-minute Exposure Notification interval number.
///
/// This is the `ENIntervalNumber` of the spec: Unix time divided by 600.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EnIntervalNumber(pub u32);

impl EnIntervalNumber {
    /// Derives the interval number from a Unix timestamp (seconds).
    pub fn from_unix(timestamp: u64) -> Self {
        EnIntervalNumber((timestamp / INTERVAL_SECONDS) as u32)
    }

    /// The Unix timestamp (seconds) at which this interval begins.
    pub fn unix_start(&self) -> u64 {
        u64::from(self.0) * INTERVAL_SECONDS
    }

    /// Aligns down to the enclosing TEK rolling-period boundary
    /// (i.e. the `rolling_start_interval_number` of the enclosing TEK).
    pub fn rolling_period_start(&self) -> Self {
        EnIntervalNumber((self.0 / TEK_ROLLING_PERIOD) * TEK_ROLLING_PERIOD)
    }

    /// True if `self` lies within `[start, start + period)`.
    pub fn within(&self, start: EnIntervalNumber, period: u32) -> bool {
        self.0 >= start.0 && self.0 < start.0.saturating_add(period)
    }

    /// The little-endian byte encoding used in RPI derivation (spec §3.2:
    /// `ENIN` is encoded as a 32-bit little-endian unsigned integer).
    pub fn to_le_bytes(&self) -> [u8; 4] {
        self.0.to_le_bytes()
    }

    /// Interval distance `self - other` in whole days (rounded toward
    /// zero), used for days-since-exposure risk bucketing.
    pub fn days_since(&self, other: EnIntervalNumber) -> i64 {
        (i64::from(self.0) - i64::from(other.0)) / i64::from(TEK_ROLLING_PERIOD)
    }

    /// Advances by `n` intervals.
    pub fn advance(&self, n: u32) -> Self {
        EnIntervalNumber(self.0.saturating_add(n))
    }
}

/// Unix timestamp (UTC seconds) for midnight of 2020-06-15, the first day
/// of the paper's measurement window. Kept here because many exposure /
/// traffic components anchor their clocks to the study window.
pub const STUDY_EPOCH_UNIX: u64 = 1_592_179_200; // 2020-06-15T00:00:00Z

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_from_unix() {
        assert_eq!(EnIntervalNumber::from_unix(0).0, 0);
        assert_eq!(EnIntervalNumber::from_unix(599).0, 0);
        assert_eq!(EnIntervalNumber::from_unix(600).0, 1);
        // Spec example magnitude check: 2020-06-15 is interval ~2.65M.
        let enin = EnIntervalNumber::from_unix(STUDY_EPOCH_UNIX);
        assert_eq!(enin.0, (STUDY_EPOCH_UNIX / 600) as u32);
    }

    #[test]
    fn unix_start_roundtrip() {
        let enin = EnIntervalNumber::from_unix(STUDY_EPOCH_UNIX + 12_345);
        assert!(enin.unix_start() <= STUDY_EPOCH_UNIX + 12_345);
        assert!(enin.unix_start() + INTERVAL_SECONDS > STUDY_EPOCH_UNIX + 12_345);
    }

    #[test]
    fn rolling_period_alignment() {
        let enin = EnIntervalNumber(144 * 10 + 37);
        assert_eq!(enin.rolling_period_start().0, 144 * 10);
        // A boundary maps to itself.
        assert_eq!(EnIntervalNumber(144 * 3).rolling_period_start().0, 144 * 3);
    }

    #[test]
    fn study_epoch_is_midnight_aligned_to_intervals() {
        // 1592179200 / 600 = 2653632, exactly: midnight is an interval edge.
        assert_eq!(STUDY_EPOCH_UNIX % INTERVAL_SECONDS, 0);
        // And a TEK boundary (divisible by 86400).
        assert_eq!(
            STUDY_EPOCH_UNIX % (u64::from(TEK_ROLLING_PERIOD) * INTERVAL_SECONDS),
            0
        );
    }

    #[test]
    fn within_window() {
        let start = EnIntervalNumber(1000);
        assert!(EnIntervalNumber(1000).within(start, 144));
        assert!(EnIntervalNumber(1143).within(start, 144));
        assert!(!EnIntervalNumber(1144).within(start, 144));
        assert!(!EnIntervalNumber(999).within(start, 144));
    }

    #[test]
    fn days_since() {
        let base = EnIntervalNumber(144 * 100);
        assert_eq!(EnIntervalNumber(144 * 103).days_since(base), 3);
        assert_eq!(EnIntervalNumber(144 * 100 + 143).days_since(base), 0);
        assert_eq!(base.days_since(EnIntervalNumber(144 * 103)), -3);
    }

    #[test]
    fn le_encoding() {
        assert_eq!(EnIntervalNumber(0x0403_0201).to_le_bytes(), [1, 2, 3, 4]);
    }
}
