//! Exact, constant-draw seeded samplers.
//!
//! Every generator in this workspace is driven by a seeded ChaCha8
//! stream, and at full scale the traffic generator is the hot path —
//! so samplers here are chosen for a *bounded uniform budget per
//! draw*, not per unit of probability mass simulated:
//!
//! * [`poisson`] — exact at every mean: sequential CDF inversion
//!   (one uniform) below a small-mean cutoff, Hörmann's PTRS
//!   transformed rejection (O(1) uniforms, ~1.1 expected) above it.
//!   Replaces Knuth's product method (~mean+1 uniforms) and the
//!   *approximate* clamped-normal large-mean fallback.
//! * [`binomial`] — exact at every size: BINV sequential inversion
//!   (one uniform) while `n·min(p,1-p)` is small, BTPE
//!   triangle/parallelogram/tail rejection above it. Replaces both the
//!   per-packet Bernoulli loop (up to n uniforms) and the approximate
//!   continuity-corrected normal used for large flows.
//! * [`NormalCache`] — Box–Muller produces two independent normals
//!   from two uniforms; the cache hands out both instead of
//!   discarding the sine variate.
//! * [`map_bits_u32`] — widening multiply-shift from 32 random bits
//!   onto `0..n`, for collapsing several per-flow field draws into one
//!   split `u64`.
//!
//! All samplers consume the RNG deterministically, so same-seed runs
//! stay bit-identical; swapping them in *re-pins* every downstream
//! seeded stream exactly once.

#![forbid(unsafe_code)]

use rand::Rng;

/// Mean below which [`poisson`] uses one-uniform CDF inversion.
pub const POISSON_INVERSION_CUTOFF: f64 = 10.0;

/// `n·min(p,1-p)` below which [`binomial`] uses one-uniform BINV
/// inversion.
pub const BINOMIAL_INVERSION_CUTOFF: f64 = 10.0;

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// 9 coefficients; |rel err| < 1e-13 on the positive axis we use).
///
/// `f64::ln_gamma` is nightly-only and the vendored crate set has no
/// `libm`, so the samplers carry their own.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula; only reached for arguments < 0.5, which
        // the samplers never produce (they pass k + 1 ≥ 1).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let t = x + 7.5;
    let mut a = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Draws from Poisson(`mean`), exactly, at any mean.
///
/// One uniform (sequential CDF inversion) below
/// [`POISSON_INVERSION_CUTOFF`]; Hörmann's PTRS transformed rejection
/// above it, which accepts with ~87 % probability per (u, v) pair so
/// the expected uniform budget is ~2.3 regardless of the mean.
pub fn poisson<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < POISSON_INVERSION_CUTOFF {
        poisson_inversion(rng, mean)
    } else {
        poisson_ptrs(rng, mean)
    }
}

/// Sequential CDF search: walk the pmf until the single uniform is
/// consumed. Expected work is O(mean) multiplications but exactly one
/// RNG draw.
fn poisson_inversion<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    let mut u: f64 = rng.gen();
    let mut k = 0u64;
    let mut pmf = (-mean).exp();
    loop {
        if u <= pmf {
            return k;
        }
        u -= pmf;
        k += 1;
        pmf *= mean / k as f64;
        if k > 500 {
            return mean.round() as u64; // float-tail guard; unreachable in practice
        }
    }
}

/// PTRS: transformed rejection with squeeze (Hörmann 1993), valid for
/// mean ≥ 10. Exact — the final comparison is against the true
/// log-pmf via [`ln_gamma`].
fn poisson_ptrs<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    let log_mean = mean.ln();
    let b = 0.931 + 2.53 * mean.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    loop {
        let u = rng.gen::<f64>() - 0.5;
        let v = rng.gen::<f64>();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + mean + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64; // squeeze accept (the common case)
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        if (v * inv_alpha / (a / (us * us) + b)).ln() <= k * log_mean - mean - ln_gamma(k + 1.0) {
            return k as u64;
        }
    }
}

/// Draws from Binomial(`n`, `p`), exactly, at any size.
///
/// One uniform (BINV sequential inversion) while `n·min(p,1-p)` is
/// below [`BINOMIAL_INVERSION_CUTOFF`]; BTPE rejection above it (O(1)
/// uniforms). `p > 0.5` is mirrored onto `n - Binomial(n, 1-p)`.
pub fn binomial<R: Rng>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        n - binomial_half(rng, n, 1.0 - p)
    } else {
        binomial_half(rng, n, p)
    }
}

/// Dispatch for `p ≤ 0.5`.
fn binomial_half<R: Rng>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n as f64 * p < BINOMIAL_INVERSION_CUTOFF {
        binomial_binv(rng, n, p)
    } else {
        binomial_btpe(rng, n, p)
    }
}

/// BINV: invert one uniform through the pmf recursion
/// `f(k+1) = f(k)·(n-k)p / ((k+1)q)`. Expected work is O(np)
/// multiplications — for the 1-in-1000 packet-sampling case (np ≈
/// 0.02) the loop body almost never runs at all.
fn binomial_binv<R: Rng>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let base = (n as f64 * q.ln()).exp(); // q^n, no underflow while np is small
                                          // Restart bound: the pmf mass beyond mean + 10σ is < 1e-20; a
                                          // uniform pointing past it is float-tail noise, so redraw.
    let np = n as f64 * p;
    let bound = (np + 10.0 * (np * q + 1.0).sqrt()).min(n as f64) as u64;
    loop {
        let mut u: f64 = rng.gen();
        let mut k = 0u64;
        let mut pmf = base;
        loop {
            if u <= pmf {
                return k;
            }
            u -= pmf;
            k += 1;
            if k > bound {
                break; // redraw
            }
            pmf *= s * (n - k + 1) as f64 / k as f64;
        }
    }
}

/// BTPE (Kachitvichyanukul & Schmeiser 1988): sample from a
/// triangle + parallelogram + two exponential tails hat, accept
/// against the exact pmf ratio `f(y)/f(m)` via [`ln_gamma`].
/// Requires `p ≤ 0.5` and `np` above the inversion cutoff.
fn binomial_btpe<R: Rng>(rng: &mut R, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let npq = nf * p * q;
    let fm = nf * p + p;
    let m = fm.floor();
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let xm = m + 0.5;
    let xl = xm - p1;
    let xr = xm + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let a = (fm - xl) / (fm - xl * p);
    let lambda_l = a * (1.0 + 0.5 * a);
    let a = (xr - fm) / (xr * q);
    let lambda_r = a * (1.0 + 0.5 * a);
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;
    let log_odds = (p / q).ln();
    let lg_m = ln_gamma(m + 1.0) + ln_gamma(nf - m + 1.0);

    loop {
        let u = rng.gen::<f64>() * p4;
        let mut v: f64 = rng.gen();
        let y: f64;
        if u <= p1 {
            // Triangular core: under the pmf everywhere, accept as-is.
            y = (xm - p1 * v + u).floor();
            return y.clamp(0.0, nf) as u64;
        } else if u <= p2 {
            // Parallelogram above the triangle.
            let x = xl + (u - p1) / c;
            v = v * c + 1.0 - (x - xm).abs() / p1;
            if v <= 0.0 || v > 1.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (xl + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (xr - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }
        if y < 0.0 || y > nf {
            continue;
        }
        // Exact accept test: v ≤ f(y)/f(m), in logs.
        let log_ratio = lg_m - ln_gamma(y + 1.0) - ln_gamma(nf - y + 1.0) + (y - m) * log_odds;
        if v.ln() <= log_ratio {
            return y as u64;
        }
    }
}

/// Paired Box–Muller: two uniforms make two independent standard
/// normals; the cache hands out the cosine variate immediately and
/// the sine variate on the next call instead of discarding it.
#[derive(Debug, Clone, Default)]
pub struct NormalCache {
    spare: Option<f64>,
}

impl NormalCache {
    /// A cache with no banked variate.
    pub fn new() -> Self {
        NormalCache::default()
    }

    /// Draws a standard normal (N(0,1)).
    pub fn standard_normal<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws from a log-normal with the given *median* (`exp(mu)`)
    /// and shape `sigma` (σ of the underlying normal).
    pub fn log_normal<R: Rng>(&mut self, rng: &mut R, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * self.standard_normal(rng)).exp()
    }
}

/// One-shot standard normal for callers without a [`NormalCache`]
/// (discards the paired variate).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    NormalCache::new().standard_normal(rng)
}

/// One-shot log-normal (see [`NormalCache::log_normal`]).
pub fn log_normal<R: Rng>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    NormalCache::new().log_normal(rng, median, sigma)
}

/// Maps 32 uniform random bits onto `0..n` with one widening
/// multiply and no rejection loop.
///
/// Used to collapse several small per-flow field draws into one split
/// `u64`. Unlike Lemire rejection this is not perfectly unbiased: the
/// per-value probability deviates by at most `n / 2^32` relatively
/// (< 3·10⁻⁵ for the ranges the generator uses) — far below anything
/// a simulation-scale sample can resolve, and draw count stays
/// constant.
#[inline]
pub fn map_bits_u32(bits: u32, n: u32) -> u32 {
    ((u64::from(bits) * u64::from(n)) >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mean_var(draws: &[f64]) -> (f64, f64) {
        let n = draws.len() as f64;
        let mean = draws.iter().sum::<f64>() / n;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut f = 1.0f64;
        for k in 1..=30u64 {
            f *= k as f64;
            let got = ln_gamma(k as f64 + 1.0);
            assert!(
                (got - f.ln()).abs() < 1e-10,
                "ln_gamma({}) = {got}, want {}",
                k + 1,
                f.ln()
            );
        }
        // Half-integer anchor: Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn poisson_zero_and_negative() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn poisson_moments_across_both_regimes() {
        // Mean and variance equal the parameter on both sides of the
        // inversion/PTRS cutoff (Poisson: mean = var = λ).
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for lam in [0.1f64, 2.0, 8.0, 12.0, 40.0, 300.0] {
            let n = 60_000;
            let draws: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lam) as f64).collect();
            let (mean, var) = mean_var(&draws);
            let se = (lam / n as f64).sqrt();
            assert!(
                (mean - lam).abs() < 5.0 * se.max(1e-3),
                "λ={lam}: mean {mean}"
            );
            assert!((var - lam).abs() / lam < 0.06, "λ={lam}: var {var}");
        }
    }

    #[test]
    fn poisson_tail_matches_exact_pmf() {
        // P(X ≥ 20 | λ=10) ≈ 0.00345 — a tail the old clamped-normal
        // approximation visibly distorts; the exact sampler must not.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let n = 200_000u32;
        let hits = (0..n).filter(|_| poisson(&mut rng, 10.0) >= 20).count();
        let frac = hits as f64 / f64::from(n);
        assert!(
            (frac - 0.003_45).abs() < 0.000_6,
            "tail mass {frac}, want ≈0.00345"
        );
    }

    #[test]
    fn poisson_continuous_across_cutoff() {
        // Distributions at λ just below and above the cutoff must not
        // jump: compare P(X ≤ 9) to the exact CDF on both sides.
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for (lam, want) in [(9.9f64, 0.470_5f64), (10.1, 0.445_5)] {
            let n = 150_000u32;
            let hits = (0..n).filter(|_| poisson(&mut rng, lam) <= 9).count();
            let got = hits as f64 / f64::from(n);
            assert!((got - want).abs() < 0.006, "λ={lam}: P(X≤9) = {got}");
        }
    }

    #[test]
    fn binomial_degenerate_cases() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, -0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(binomial(&mut rng, 100, 1.5), 100);
    }

    #[test]
    fn binomial_moments_across_all_paths() {
        // (n, p) chosen to cover BINV, BTPE, and the mirrored p > 0.5
        // variants of both. Binomial: mean = np, var = npq.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for (n, p) in [
            (20u64, 0.1f64),    // BINV
            (20, 0.9),          // mirrored BINV
            (64, 0.5),          // BTPE at the old Bernoulli-loop edge
            (10_000, 0.01),     // BTPE, small p
            (10_000, 0.99),     // mirrored BTPE
            (1_000_000, 0.001), // old normal-approx regime, now exact
        ] {
            let trials = 40_000;
            let draws: Vec<f64> = (0..trials)
                .map(|_| binomial(&mut rng, n, p) as f64)
                .collect();
            let (mean, var) = mean_var(&draws);
            let want_mean = n as f64 * p;
            let want_var = n as f64 * p * (1.0 - p);
            let se = (want_var / trials as f64).sqrt();
            assert!(
                (mean - want_mean).abs() < 5.0 * se.max(1e-3),
                "n={n} p={p}: mean {mean}, want {want_mean}"
            );
            assert!(
                (var - want_var).abs() / want_var < 0.06,
                "n={n} p={p}: var {var}, want {want_var}"
            );
        }
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for _ in 0..20_000 {
            assert!(binomial(&mut rng, 50, 0.97) <= 50);
            assert!(binomial(&mut rng, 3, 0.5) <= 3);
        }
    }

    #[test]
    fn binomial_section2_phenomenon_shape() {
        // The paper's §2 limitation, as a distribution fact: a
        // 10-packet flow under 1-in-1000 random sampling is observed
        // with probability 1-(1-1/1000)^10 ≈ 0.995 %, and conditional
        // on being seen shows ~1.004 packets.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let n = 400_000u32;
        let mut seen = 0u32;
        let mut seen_packets = 0u64;
        for _ in 0..n {
            let k = binomial(&mut rng, 10, 0.001);
            if k > 0 {
                seen += 1;
                seen_packets += k;
            }
        }
        let frac = f64::from(seen) / f64::from(n);
        assert!(
            (frac - 0.009_95).abs() < 0.000_8,
            "P(seen) = {frac}, want ≈0.00995"
        );
        let avg = seen_packets as f64 / f64::from(seen.max(1));
        assert!(avg < 1.02, "E[packets | seen] = {avg}, want ≈1.004");
    }

    #[test]
    fn binomial_tail_matches_exact_mass() {
        // P(X ≥ 5 | n=1000, p=1/1000) ≈ 0.00364 (≈ Poisson(1) tail).
        // The Bernoulli loop got this right and the sampler swap must
        // keep it right.
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let n = 300_000u32;
        let hits = (0..n)
            .filter(|_| binomial(&mut rng, 1000, 0.001) >= 5)
            .count();
        let frac = hits as f64 / f64::from(n);
        assert!(
            (frac - 0.003_64).abs() < 0.000_7,
            "tail mass {frac}, want ≈0.00364"
        );
    }

    #[test]
    fn normal_cache_moments_and_pairing() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut cache = NormalCache::new();
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| cache.standard_normal(&mut rng)).collect();
        let (mean, var) = mean_var(&draws);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        // Paired variates are independent: lag-1 autocorrelation ≈ 0.
        let cov: f64 = draws.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (n as f64 - 1.0);
        assert!(cov.abs() < 0.02, "lag-1 autocovariance {cov}");
    }

    #[test]
    fn normal_cache_halves_uniform_consumption() {
        // Two cached draws must consume exactly one Box–Muller pair:
        // the RNG position after 2 cached normals equals the position
        // after 2 manual uniform draws.
        let mut a = ChaCha8Rng::seed_from_u64(32);
        let mut cache = NormalCache::new();
        let _ = cache.standard_normal(&mut a);
        let _ = cache.standard_normal(&mut a);
        let mut b = ChaCha8Rng::seed_from_u64(32);
        let _: f64 = b.gen_range(f64::EPSILON..1.0);
        let _: f64 = b.gen();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "RNG streams aligned");
    }

    #[test]
    fn log_normal_median_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let n = 50_000;
        let mut draws: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 20.0, 0.8)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[n / 2];
        assert!((median - 20.0).abs() / 20.0 < 0.05, "median {median}");
    }

    #[test]
    fn map_bits_covers_range_uniformly() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let n = 16u32;
        let mut counts = [0u32; 16];
        let trials = 160_000;
        for _ in 0..trials {
            let v = map_bits_u32(rng.gen::<u32>(), n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        let expect = trials as f64 / f64::from(n);
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expect).abs() < 5.0 * expect.sqrt(),
                "bucket {i}: {c} vs {expect}"
            );
        }
        // Endpoints map correctly.
        assert_eq!(map_bits_u32(0, 100), 0);
        assert_eq!(map_bits_u32(u32::MAX, 100), 99);
    }

    #[test]
    fn samplers_are_deterministic_given_seed() {
        let draw_all = |seed: u64| -> (Vec<u64>, Vec<u64>, Vec<u64>) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let p: Vec<u64> = (0..100)
                .map(|i| poisson(&mut rng, 0.5 + i as f64))
                .collect();
            let b: Vec<u64> = (0..100).map(|i| binomial(&mut rng, 10 + i, 0.3)).collect();
            let m: Vec<u64> = (0..100)
                .map(|_| u64::from(map_bits_u32(rng.gen(), 1000)))
                .collect();
            (p, b, m)
        };
        assert_eq!(draw_all(7), draw_all(7));
        assert_ne!(draw_all(7), draw_all(8));
    }
}
