//! # cwa-geo — a synthetic but structurally faithful model of Germany
//!
//! The paper geolocates CWA request traffic "*within Germany … by ZIP
//! code areas*" (Fig. 3), deriving 18 % of geolocations from
//! ground-truth router locations of one ISP and the rest from a
//! Maxmind-style geolocation database applied to routing prefixes (§3).
//! This crate builds every geographic substrate that pipeline needs:
//!
//! * [`state`] — the 16 real federal states with 2020 populations.
//! * [`district`] — 401 districts (Kreise): real anchors for every state
//!   capital, the major cities, and the paper's three outbreak districts
//!   (**Berlin**, **Gütersloh**, **Warendorf**), plus synthesized rural
//!   districts that conserve each state's population; each district has
//!   coordinates, a ZIP prefix, and an urbanization class.
//! * [`germany`] — the assembled country with lookups, neighbor
//!   relations, and distance helpers.
//! * [`isp`] — a six-ISP market model with national shares, per-district
//!   IPv4 prefix pools (the "routing prefixes" of the paper), and
//!   static vs. dynamic address-assignment behaviour (DSL 24 h
//!   reconnects vs. sticky cable/fiber leases) — the mechanism behind
//!   the paper's prefix-persistence statistics. One ISP ("RegioNet",
//!   18 % share) is the ground-truth ISP whose router locations are
//!   known exactly, matching the paper's 18 % figure.
//! * [`commuting`] — a gravity commuting model coupling districts (the
//!   path by which the Gütersloh outbreak seeded Warendorf).
//! * [`routers`] — the ground-truth ISP's customer-facing routers, with
//!   the rural aggregation effect the paper warns about ("the router
//!   city-location can be off the clients location").
//! * [`geodb`] — a Maxmind-like geolocation database over those
//!   prefixes with a configurable city-level error model (the paper
//!   cites Poese et al. on geolocation-DB unreliability and warns about
//!   exactly these errors).
//!
//! Everything is deterministic given a seed; no external data files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commuting;
pub mod district;
pub mod geodb;
pub mod germany;
pub mod isp;
pub mod routers;
pub mod state;

pub use commuting::{CommutingConfig, CommutingMatrix};
pub use district::{District, DistrictId, UrbanClass};
pub use geodb::{GeoDb, GeoDbConfig, GeoEntry};
pub use germany::Germany;
pub use isp::{AccessKind, AddressPlan, AddressPlanConfig, Isp, IspId, PrefixAllocation};
pub use routers::{RouterInfo, RouterMap, RouterMapConfig};
pub use state::FederalState;
