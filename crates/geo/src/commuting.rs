//! Inter-district mobility: a gravity commuting model.
//!
//! Epidemics do not respect district borders — the real Gütersloh
//! outbreak seeded neighbouring Warendorf through meat-plant commuters.
//! This module provides the standard gravity formulation
//!
//! ```text
//! w(i→j) ∝ pop_i · pop_j / distance(i,j)^γ        (i ≠ j)
//! ```
//!
//! normalized per origin so that a configurable fraction of each
//! district's contacts happen *outside* the home district. The epidemic
//! model uses the resulting mixing matrix to couple district-level SEIR
//! compartments.

use serde::{Deserialize, Serialize};

use crate::district::DistrictId;
use crate::germany::Germany;

/// Gravity-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommutingConfig {
    /// Distance-decay exponent γ (empirically ≈ 1.5–2.5 for commuting).
    pub gamma: f64,
    /// Fraction of a resident's contacts outside the home district.
    pub out_of_district_fraction: f64,
    /// Hard cut-off: no meaningful commuting beyond this distance, km.
    pub max_distance_km: f64,
    /// Keep only the strongest `top_k` destinations per origin (sparsity;
    /// the true commuting matrix is extremely sparse).
    pub top_k: usize,
}

impl Default for CommutingConfig {
    fn default() -> Self {
        CommutingConfig {
            gamma: 2.0,
            out_of_district_fraction: 0.18,
            max_distance_km: 120.0,
            top_k: 12,
        }
    }
}

/// The sparse per-origin mixing rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommutingMatrix {
    /// `rows[i]` = list of `(destination, weight)`; weights of a row sum
    /// to `out_of_district_fraction`; the remaining mass stays home.
    rows: Vec<Vec<(DistrictId, f64)>>,
    /// Fraction of contacts kept in the home district.
    pub home_fraction: f64,
}

impl CommutingMatrix {
    /// Builds the matrix for a country model.
    pub fn build(germany: &Germany, config: CommutingConfig) -> Self {
        let n = germany.len();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let di = &germany.districts()[i];
            let mut weights: Vec<(DistrictId, f64)> = Vec::new();
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dj = &germany.districts()[j];
                let dist = germany.distance_km(di.id, dj.id).max(5.0);
                if dist > config.max_distance_km {
                    continue;
                }
                let w =
                    f64::from(di.population) * f64::from(dj.population) / dist.powf(config.gamma);
                weights.push((dj.id, w));
            }
            // Keep only the strongest destinations.
            weights.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
            weights.truncate(config.top_k);
            let total: f64 = weights.iter().map(|(_, w)| w).sum();
            if total > 0.0 {
                for (_, w) in weights.iter_mut() {
                    *w *= config.out_of_district_fraction / total;
                }
            }
            rows.push(weights);
        }
        CommutingMatrix {
            rows,
            home_fraction: 1.0 - config.out_of_district_fraction,
        }
    }

    /// The out-of-district mixing row of a district.
    pub fn row(&self, district: DistrictId) -> &[(DistrictId, f64)] {
        &self.rows[usize::from(district.0)]
    }

    /// The effective force-of-infection seen by district `i`, given
    /// per-district infectious *fractions*: a convex combination of home
    /// prevalence and the prevalence where residents commute.
    pub fn coupled_prevalence(&self, district: DistrictId, prevalence: &[f64]) -> f64 {
        let own = prevalence[usize::from(district.0)] * self.home_fraction;
        let away: f64 = self
            .row(district)
            .iter()
            .map(|&(j, w)| prevalence[usize::from(j.0)] * w)
            .sum();
        own + away
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Germany, CommutingMatrix) {
        let g = Germany::build();
        let m = CommutingMatrix::build(&g, CommutingConfig::default());
        (g, m)
    }

    #[test]
    fn rows_normalized() {
        let (g, m) = setup();
        for d in g.districts() {
            let sum: f64 = m.row(d.id).iter().map(|(_, w)| w).sum();
            assert!(sum <= 0.18 + 1e-9, "{}: out-of-district mass {sum}", d.name);
            // Districts with any neighbour in range carry the full mass.
            if !m.row(d.id).is_empty() {
                assert!((sum - 0.18).abs() < 1e-9, "{}: {sum}", d.name);
            }
        }
        assert!((m.home_fraction - 0.82).abs() < 1e-12);
    }

    #[test]
    fn no_self_loops_and_sparse() {
        let (g, m) = setup();
        for d in g.districts() {
            assert!(m.row(d.id).iter().all(|&(j, _)| j != d.id));
            assert!(m.row(d.id).len() <= 12);
        }
    }

    #[test]
    fn guetersloh_couples_to_warendorf() {
        // The real-world seeding path the June-23 event followed.
        let (g, m) = setup();
        let gt = g.by_name("Gütersloh").unwrap().id;
        let wa = g.by_name("Warendorf").unwrap().id;
        assert!(
            m.row(gt).iter().any(|&(j, _)| j == wa),
            "Warendorf must be a top commuting destination of Gütersloh: {:?}",
            m.row(gt)
                .iter()
                .map(|(j, w)| (g.district(*j).name.clone(), *w))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn nearby_beats_faraway() {
        let (g, m) = setup();
        let gt = g.by_name("Gütersloh").unwrap().id;
        let munich = g.by_name("München").unwrap().id;
        // München is ~480 km away: over the cut-off, never in the row.
        assert!(m.row(gt).iter().all(|&(j, _)| j != munich));
    }

    #[test]
    fn coupled_prevalence_mixes() {
        let (g, m) = setup();
        let gt = g.by_name("Gütersloh").unwrap().id;
        let mut prevalence = vec![0.0; g.len()];
        prevalence[usize::from(gt.0)] = 0.01;
        // Own district: home fraction of its prevalence.
        let own = m.coupled_prevalence(gt, &prevalence);
        assert!((own - 0.0082).abs() < 1e-9, "{own}");
        // A commuting neighbour sees a nonzero import.
        let wa = g.by_name("Warendorf").unwrap().id;
        let imported = m.coupled_prevalence(wa, &prevalence);
        assert!(imported > 0.0, "Warendorf imports prevalence: {imported}");
        assert!(imported < own);
        // A far district sees none.
        let munich = g.by_name("München").unwrap().id;
        assert_eq!(m.coupled_prevalence(munich, &prevalence), 0.0);
    }

    #[test]
    fn uniform_prevalence_is_preserved() {
        // With prevalence p everywhere, coupling must return ≈ p
        // (weights are a convex combination).
        let (g, m) = setup();
        let prevalence = vec![0.003; g.len()];
        for d in g.districts().iter().step_by(37) {
            let c = m.coupled_prevalence(d.id, &prevalence);
            assert!(
                c <= 0.003 + 1e-12 && c >= 0.003 * m.home_fraction - 1e-12,
                "{}: {c}",
                d.name
            );
        }
    }
}
