//! Customer-facing routers of the ground-truth ISP.
//!
//! The paper derives 18 % of geolocations "from local routers within an
//! ISP (ground truth since the router locations are known)" — but
//! immediately cautions that "the router city-location can be off the
//! clients location (e.g., in rural areas)". That is an aggregation
//! effect: rural subscribers are often homed onto a BNG in a
//! neighbouring town. [`RouterMap`] models it: every ground-truth-ISP
//! prefix is served by a named router; metro/urban prefixes by a router
//! in their own district, rural prefixes with some probability by the
//! nearest in-state neighbour's router.

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::district::{DistrictId, UrbanClass};
use crate::germany::Germany;
use crate::isp::AddressPlan;

/// Router-aggregation model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterMapConfig {
    /// Probability a *rural* prefix is homed on the neighbouring
    /// district's router.
    pub rural_aggregation_prob: f64,
    /// Same for suburban prefixes (usually lower).
    pub suburban_aggregation_prob: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for RouterMapConfig {
    fn default() -> Self {
        RouterMapConfig {
            rural_aggregation_prob: 0.30,
            suburban_aggregation_prob: 0.10,
            seed: 0xB46,
        }
    }
}

/// One router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterInfo {
    /// Router identifier (stable).
    pub id: u32,
    /// District the router physically sits in.
    pub district: DistrictId,
    /// Coordinates (the district centroid — BNGs sit in the main town).
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
}

/// Prefix → serving-router assignment for the ground-truth ISP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterMap {
    /// One router per district that hosts any.
    routers: Vec<RouterInfo>,
    /// Ground-truth-ISP prefix network → index into `routers`.
    by_prefix: HashMap<u32, usize>,
}

impl RouterMap {
    /// Builds the map over the plan's ground-truth ISP allocations.
    pub fn build(germany: &Germany, plan: &AddressPlan, config: RouterMapConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let gt_isp = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .expect("a ground-truth ISP exists")
            .id;

        // One router per district.
        let mut router_of_district: HashMap<DistrictId, usize> = HashMap::new();
        let mut routers = Vec::new();
        let mut router_for = |district: DistrictId, germany: &Germany| -> usize {
            *router_of_district.entry(district).or_insert_with(|| {
                let d = germany.district(district);
                routers.push(RouterInfo {
                    id: routers.len() as u32,
                    district,
                    lat: d.lat,
                    lon: d.lon,
                });
                routers.len() - 1
            })
        };

        let mut by_prefix = HashMap::new();
        for alloc in plan.allocations().iter().filter(|a| a.isp == gt_isp) {
            let home = alloc.district;
            let urban = germany.district(home).urban;
            let aggregation_prob = match urban {
                UrbanClass::Rural => config.rural_aggregation_prob,
                UrbanClass::Suburban => config.suburban_aggregation_prob,
                _ => 0.0,
            };
            let serving = if aggregation_prob > 0.0 && rng.gen::<f64>() < aggregation_prob {
                germany.nearest_in_state(home)
            } else {
                home
            };
            let idx = router_for(serving, germany);
            by_prefix.insert(u32::from(alloc.network), idx);
        }

        RouterMap { routers, by_prefix }
    }

    /// The serving router of a ground-truth-ISP prefix network.
    pub fn router_of(&self, network: u32) -> Option<&RouterInfo> {
        self.by_prefix.get(&network).map(|&i| &self.routers[i])
    }

    /// All routers.
    pub fn routers(&self) -> &[RouterInfo] {
        &self.routers
    }

    /// Number of mapped prefixes.
    pub fn prefix_count(&self) -> usize {
        self.by_prefix.len()
    }

    /// Fraction of prefixes served from outside their home district
    /// (calibration helper; uses the plan for the home mapping).
    pub fn aggregated_share(&self, plan: &AddressPlan) -> f64 {
        if self.by_prefix.is_empty() {
            return f64::NAN;
        }
        let home: HashMap<u32, DistrictId> = plan
            .allocations()
            .iter()
            .map(|a| (u32::from(a.network), a.district))
            .collect();
        let off = self
            .by_prefix
            .iter()
            .filter(|(&net, &idx)| home.get(&net) != Some(&self.routers[idx].district))
            .count();
        off as f64 / self.by_prefix.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isp::AddressPlanConfig;

    fn setup() -> (Germany, AddressPlan, RouterMap) {
        let g = Germany::build();
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let map = RouterMap::build(&g, &plan, RouterMapConfig::default());
        (g, plan, map)
    }

    #[test]
    fn covers_every_gt_prefix() {
        let (_, plan, map) = setup();
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let expected = plan.allocations().iter().filter(|a| a.isp == gt).count();
        assert_eq!(map.prefix_count(), expected);
        for a in plan.allocations().iter().filter(|a| a.isp == gt) {
            assert!(map.router_of(u32::from(a.network)).is_some());
        }
    }

    #[test]
    fn non_gt_prefixes_unmapped() {
        let (_, plan, map) = setup();
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let other = plan.allocations().iter().find(|a| a.isp != gt).unwrap();
        assert!(map.router_of(u32::from(other.network)).is_none());
    }

    #[test]
    fn metro_prefixes_stay_home() {
        let (g, plan, map) = setup();
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let berlin = g.by_name("Berlin").unwrap().id;
        for a in plan
            .allocations()
            .iter()
            .filter(|a| a.isp == gt && a.district == berlin)
        {
            let r = map.router_of(u32::from(a.network)).unwrap();
            assert_eq!(r.district, berlin, "metro never aggregated away");
        }
    }

    #[test]
    fn rural_aggregation_near_configured_rate() {
        let (g, plan, map) = setup();
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let mut rural_total = 0u32;
        let mut rural_off = 0u32;
        for a in plan.allocations().iter().filter(|a| a.isp == gt) {
            if g.district(a.district).urban == UrbanClass::Rural {
                rural_total += 1;
                let r = map.router_of(u32::from(a.network)).unwrap();
                if r.district != a.district {
                    rural_off += 1;
                }
            }
        }
        let rate = f64::from(rural_off) / f64::from(rural_total.max(1));
        assert!((0.2..0.4).contains(&rate), "rural aggregation rate {rate}");
    }

    #[test]
    fn aggregated_share_consistent() {
        let (_, plan, map) = setup();
        let share = map.aggregated_share(&plan);
        // Mostly rural districts × 0.3 + suburban × 0.1 ⇒ teens overall.
        assert!((0.02..0.35).contains(&share), "aggregated share {share}");
    }

    #[test]
    fn deterministic() {
        let (g, plan, _) = setup();
        let a = RouterMap::build(&g, &plan, RouterMapConfig::default());
        let b = RouterMap::build(&g, &plan, RouterMapConfig::default());
        assert_eq!(a.routers(), b.routers());
    }

    #[test]
    fn routers_sit_at_district_centroids() {
        let (g, _, map) = setup();
        for r in map.routers() {
            let d = g.district(r.district);
            assert_eq!((r.lat, r.lon), (d.lat, d.lon));
        }
    }
}
