//! The ISP market and IPv4 address plan.
//!
//! The paper's per-prefix analyses ("*customers of certain ISPs keep the
//! same IP address over time*", §3) depend on ISP behaviour: classic DSL
//! providers force a reconnect (new address) every 24 h, while cable and
//! fiber ISPs hand out long-lived leases. We model a six-ISP market with
//! 2020-plausible national shares and carve per-district routing
//! prefixes out of each ISP's address space. One mid-size ISP,
//! *RegioNet* (18 % share), plays the role of the paper's ground-truth
//! ISP: the locations of its customer-facing routers are known exactly,
//! matching "*we derive 18 % of geolocations from local routers within
//! an ISP*".

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::district::DistrictId;
use crate::germany::Germany;

/// Stable ISP identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IspId(pub u8);

/// How an ISP assigns customer addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Long-lived leases: a customer keeps the same address for weeks
    /// (cable/fiber).
    StaticLease,
    /// Forced daily reconnect: a new address from the regional pool every
    /// 24 h (classic German DSL).
    Dynamic24h,
}

/// An internet service provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Isp {
    /// Stable id (index into [`AddressPlan::isps`]).
    pub id: IspId,
    /// Display name (fictional, modelled on the real market structure).
    pub name: String,
    /// National market share (fraction of subscriptions).
    pub market_share: f64,
    /// Address-assignment behaviour.
    pub access: AccessKind,
    /// True for the ISP whose router locations the vantage point knows
    /// exactly (the paper's 18 % ground-truth source).
    pub ground_truth_routers: bool,
    /// Base of this ISP's address space.
    pub base: Ipv4Addr,
}

/// The canonical six-ISP market.
fn market() -> Vec<Isp> {
    let mk = |id: u8, name: &str, share: f64, access: AccessKind, gt: bool, base: [u8; 4]| Isp {
        id: IspId(id),
        name: name.to_owned(),
        market_share: share,
        access,
        ground_truth_routers: gt,
        base: Ipv4Addr::from(base),
    };
    vec![
        mk(
            0,
            "TeleNord DSL",
            0.38,
            AccessKind::Dynamic24h,
            false,
            [84, 0, 0, 0],
        ),
        mk(
            1,
            "KabelWest",
            0.22,
            AccessKind::StaticLease,
            false,
            [86, 0, 0, 0],
        ),
        mk(
            2,
            "RegioNet",
            0.18,
            AccessKind::StaticLease,
            true,
            [88, 0, 0, 0],
        ),
        mk(
            3,
            "FunkNetz Mobile",
            0.12,
            AccessKind::Dynamic24h,
            false,
            [90, 0, 0, 0],
        ),
        mk(
            4,
            "EinsWeb DSL",
            0.08,
            AccessKind::Dynamic24h,
            false,
            [92, 0, 0, 0],
        ),
        mk(
            5,
            "MiscNet",
            0.02,
            AccessKind::StaticLease,
            false,
            [94, 0, 0, 0],
        ),
    ]
}

/// One routing prefix serving one district for one ISP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixAllocation {
    /// Network address.
    pub network: Ipv4Addr,
    /// Prefix length.
    pub len: u8,
    /// Owning ISP.
    pub isp: IspId,
    /// District whose customers this prefix serves.
    pub district: DistrictId,
    /// Number of subscriber slots.
    pub capacity: u32,
}

impl PrefixAllocation {
    /// The `i`-th host address of the prefix (wraps within capacity).
    pub fn host(&self, i: u32) -> Ipv4Addr {
        let size = 1u32 << (32 - u32::from(self.len));
        Ipv4Addr::from(u32::from(self.network) + (i % size.max(1)))
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        crate::geodb::mask(addr, self.len) == u32::from(self.network)
    }
}

/// Address-plan tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AddressPlanConfig {
    /// People per broadband subscription (household size).
    pub persons_per_subscription: f64,
    /// Subscriber slots per prefix.
    pub prefix_capacity: u32,
    /// Prefix length (must satisfy `2^(32-len) ≥ prefix_capacity`).
    pub prefix_len: u8,
}

impl Default for AddressPlanConfig {
    fn default() -> Self {
        AddressPlanConfig {
            persons_per_subscription: 2.0,
            prefix_capacity: 1024,
            prefix_len: 22,
        }
    }
}

/// The full national address plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressPlan {
    /// The ISPs, indexable by `IspId`.
    pub isps: Vec<Isp>,
    /// All allocations, sorted by network address.
    allocations: Vec<PrefixAllocation>,
    /// Configuration used to build the plan.
    pub config: AddressPlanConfig,
}

impl AddressPlan {
    /// Builds the plan for the given country model.
    pub fn build(germany: &Germany, config: AddressPlanConfig) -> Self {
        let isps = market();
        let mut allocations = Vec::new();

        for isp in &isps {
            let mut next = u32::from(isp.base);
            let step = 1u32 << (32 - u32::from(config.prefix_len));
            for district in germany.districts() {
                let subscribers = (f64::from(district.population) * isp.market_share
                    / config.persons_per_subscription)
                    .round() as u32;
                if subscribers == 0 {
                    continue;
                }
                let n_prefixes = subscribers.div_ceil(config.prefix_capacity).max(1);
                for p in 0..n_prefixes {
                    let cap = if p + 1 == n_prefixes {
                        subscribers - p * config.prefix_capacity
                    } else {
                        config.prefix_capacity
                    };
                    allocations.push(PrefixAllocation {
                        network: Ipv4Addr::from(next),
                        len: config.prefix_len,
                        isp: isp.id,
                        district: district.id,
                        capacity: cap.max(1),
                    });
                    next = next.checked_add(step).expect("ISP address space exhausted");
                }
            }
        }

        allocations.sort_unstable_by_key(|a| u32::from(a.network));
        AddressPlan {
            isps,
            allocations,
            config,
        }
    }

    /// All allocations (sorted by network address).
    pub fn allocations(&self) -> &[PrefixAllocation] {
        &self.allocations
    }

    /// ISP lookup.
    pub fn isp(&self, id: IspId) -> &Isp {
        &self.isps[usize::from(id.0)]
    }

    /// Finds the allocation containing `addr` (binary search).
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&PrefixAllocation> {
        let needle = u32::from(addr);
        let idx = self
            .allocations
            .partition_point(|a| u32::from(a.network) <= needle);
        if idx == 0 {
            return None;
        }
        let candidate = &self.allocations[idx - 1];
        candidate.contains(addr).then_some(candidate)
    }

    /// All allocations serving a district.
    pub fn for_district(&self, district: DistrictId) -> impl Iterator<Item = &PrefixAllocation> {
        self.allocations
            .iter()
            .filter(move |a| a.district == district)
    }

    /// Total subscribers across the plan.
    pub fn total_subscribers(&self) -> u64 {
        self.allocations.iter().map(|a| u64::from(a.capacity)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> (Germany, AddressPlan) {
        let g = Germany::build();
        let p = AddressPlan::build(&g, AddressPlanConfig::default());
        (g, p)
    }

    #[test]
    fn market_shares_sum_to_one() {
        let total: f64 = market().iter().map(|i| i.market_share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exactly_one_ground_truth_isp_with_18_percent() {
        let gt: Vec<_> = market()
            .into_iter()
            .filter(|i| i.ground_truth_routers)
            .collect();
        assert_eq!(gt.len(), 1);
        assert!((gt[0].market_share - 0.18).abs() < 1e-9);
    }

    #[test]
    fn plan_size_plausible() {
        let (_, p) = plan();
        let n = p.allocations().len();
        // ~41.5M subscribers at ≤1024/prefix: ≥ 40k prefixes, plus
        // per-district rounding overhead.
        assert!((40_000..60_000).contains(&n), "{n} prefixes");
    }

    #[test]
    fn subscriber_totals_match_population() {
        let (g, p) = plan();
        let expected = g.population() as f64 / 2.0;
        let got = p.total_subscribers() as f64;
        let rel = (got - expected).abs() / expected;
        assert!(rel < 0.01, "subscribers {got} vs population/2 {expected}");
    }

    #[test]
    fn allocations_disjoint() {
        let (_, p) = plan();
        let allocs = p.allocations();
        for w in allocs.windows(2) {
            let end = u32::from(w[0].network) + (1u32 << (32 - u32::from(w[0].len)));
            assert!(
                u32::from(w[1].network) >= end,
                "{} overlaps {}",
                w[0].network,
                w[1].network
            );
        }
    }

    #[test]
    fn lookup_finds_host_addresses() {
        let (_, p) = plan();
        let a = &p.allocations()[17];
        for i in [0u32, 1, a.capacity - 1] {
            let host = a.host(i);
            let found = p.lookup(host).expect("host in plan");
            assert_eq!(found.network, a.network);
        }
    }

    #[test]
    fn lookup_misses_outside_space() {
        let (_, p) = plan();
        assert!(p.lookup(Ipv4Addr::new(8, 8, 8, 8)).is_none());
        assert!(p.lookup(Ipv4Addr::new(203, 0, 113, 7)).is_none());
    }

    #[test]
    fn every_district_served_by_every_major_isp() {
        let (g, p) = plan();
        for district in g.districts() {
            let isps: std::collections::HashSet<_> =
                p.for_district(district.id).map(|a| a.isp).collect();
            assert!(
                isps.len() >= 5,
                "{} served by only {} ISPs",
                district.name,
                isps.len()
            );
        }
    }

    #[test]
    fn ground_truth_share_of_subscribers() {
        let (_, p) = plan();
        let gt_isp = p.isps.iter().find(|i| i.ground_truth_routers).unwrap().id;
        let gt: u64 = p
            .allocations()
            .iter()
            .filter(|a| a.isp == gt_isp)
            .map(|a| u64::from(a.capacity))
            .sum();
        let share = gt as f64 / p.total_subscribers() as f64;
        assert!((share - 0.18).abs() < 0.01, "ground-truth share {share}");
    }

    #[test]
    fn capacity_conservation_per_district() {
        let (g, p) = plan();
        let d = g.by_name("Gütersloh").unwrap();
        let subs: u64 = p.for_district(d.id).map(|a| u64::from(a.capacity)).sum();
        let expected = f64::from(d.population) / 2.0;
        let rel = (subs as f64 - expected).abs() / expected;
        assert!(rel < 0.02, "Gütersloh subscribers {subs} vs {expected}");
    }

    #[test]
    fn dsl_isps_are_dynamic() {
        let isps = market();
        let dsl = isps.iter().find(|i| i.name.contains("TeleNord")).unwrap();
        assert_eq!(dsl.access, AccessKind::Dynamic24h);
        let cable = isps.iter().find(|i| i.name.contains("Kabel")).unwrap();
        assert_eq!(cable.access, AccessKind::StaticLease);
    }
}
