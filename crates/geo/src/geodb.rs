//! A Maxmind-style geolocation database with a realistic error model.
//!
//! The paper geolocates client prefixes in two ways (§3):
//!
//! 1. **Router ground truth** for one ISP whose customer-facing router
//!    locations are known (18 % of geolocations) — always correct.
//! 2. A **commercial geolocation database** on routing prefixes for the
//!    rest — "*can be subject to errors; the router city-location can be
//!    off the clients location (e.g., in rural areas) and Maxmind's
//!    geolocation can also be subject to inaccuracies at city-level*",
//!    citing Poese et al. (CCR 2011).
//!
//! [`GeoDb`] reproduces this: for every prefix of the address plan it
//! stores a located district that is *usually* the true one but, with a
//! configurable error rate, is displaced to a nearby district or
//! collapsed to the state's largest city (the classic "everything
//! geolocates to the big city" failure mode).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::district::DistrictId;
use crate::germany::Germany;
use crate::isp::AddressPlan;

/// Masks `addr` down to its `/len` network (as a u32).
pub fn mask(addr: Ipv4Addr, len: u8) -> u32 {
    if len == 0 {
        return 0;
    }
    let len = len.min(32);
    let m = if len == 32 {
        u32::MAX
    } else {
        !(u32::MAX >> len)
    };
    u32::from(addr) & m
}

/// Error-model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoDbConfig {
    /// Probability that a prefix is mislocated (Maxmind city-level error;
    /// literature suggests 10–30 % outside the US).
    pub city_error_rate: f64,
    /// Of the errors, fraction landing in a *nearby* district (the rest
    /// collapse to the state's largest city).
    pub nearby_error_fraction: f64,
    /// RNG seed for the (deterministic) error assignment.
    pub seed: u64,
}

impl Default for GeoDbConfig {
    fn default() -> Self {
        GeoDbConfig {
            city_error_rate: 0.15,
            nearby_error_fraction: 0.7,
            seed: 0xC0FFEE,
        }
    }
}

/// One database entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoEntry {
    /// The district the DB *claims* the prefix is in.
    pub located: DistrictId,
    /// The true district (kept for calibration/tests only; the analysis
    /// pipeline never reads it).
    pub truth: DistrictId,
    /// Claimed coordinates.
    pub lat: f64,
    /// Claimed coordinates.
    pub lon: f64,
}

impl GeoEntry {
    /// Whether the DB located this prefix correctly.
    pub fn is_correct(&self) -> bool {
        self.located == self.truth
    }
}

/// The geolocation database, keyed by `/len` prefix network address.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoDb {
    /// Prefix length the DB is keyed on.
    pub prefix_len: u8,
    entries: HashMap<u32, GeoEntry>,
}

impl GeoDb {
    /// Builds the database over an address plan.
    pub fn build(germany: &Germany, plan: &AddressPlan, config: GeoDbConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut entries = HashMap::with_capacity(plan.allocations().len());

        // Largest city per state (the "collapse" target of gross errors).
        let mut biggest: HashMap<crate::state::FederalState, DistrictId> = HashMap::new();
        for d in germany.districts() {
            let cur = biggest.entry(d.state).or_insert(d.id);
            if germany.district(*cur).population < d.population {
                *cur = d.id;
            }
        }

        for alloc in plan.allocations() {
            let truth = alloc.district;
            let located = if rng.gen::<f64>() < config.city_error_rate {
                if rng.gen::<f64>() < config.nearby_error_fraction {
                    germany.nearest_in_state(truth)
                } else {
                    biggest[&germany.district(truth).state]
                }
            } else {
                truth
            };
            let d = germany.district(located);
            entries.insert(
                mask(alloc.network, alloc.len),
                GeoEntry {
                    located,
                    truth,
                    lat: d.lat,
                    lon: d.lon,
                },
            );
        }
        GeoDb {
            prefix_len: plan.config.prefix_len,
            entries,
        }
    }

    /// Looks up an address.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<GeoEntry> {
        self.entries.get(&mask(addr, self.prefix_len)).copied()
    }

    /// Looks up by pre-masked prefix network value.
    pub fn lookup_prefix(&self, network: u32) -> Option<GeoEntry> {
        self.entries.get(&network).copied()
    }

    /// Number of prefixes in the DB.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the DB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of correctly located prefixes (calibration helper).
    pub fn accuracy(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        let ok = self.entries.values().filter(|e| e.is_correct()).count();
        ok as f64 / self.entries.len() as f64
    }

    /// Re-keys the database through an address transformation — e.g.
    /// Crypto-PAn — producing the side table the measurement operator
    /// hands to analysts along with anonymized traces. (Prefix-preserving
    /// anonymization maps each `/len` prefix onto a unique anonymized
    /// `/len` prefix, so the table stays well-defined.)
    pub fn rekeyed<F: Fn(Ipv4Addr) -> Ipv4Addr>(&self, f: F) -> GeoDb {
        let entries = self
            .entries
            .iter()
            .map(|(&net, &entry)| {
                let anon = f(Ipv4Addr::from(net));
                (mask(anon, self.prefix_len), entry)
            })
            .collect();
        GeoDb {
            prefix_len: self.prefix_len,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isp::AddressPlanConfig;

    fn setup() -> (Germany, AddressPlan, GeoDb) {
        let g = Germany::build();
        // Coarser prefixes: faster tests.
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let db = GeoDb::build(&g, &plan, GeoDbConfig::default());
        (g, plan, db)
    }

    #[test]
    fn covers_every_prefix() {
        let (_, plan, db) = setup();
        assert_eq!(db.len(), plan.allocations().len());
        for a in plan.allocations() {
            assert!(db.lookup(a.network).is_some());
            assert!(db.lookup(a.host(3)).is_some(), "host addresses resolve too");
        }
    }

    #[test]
    fn accuracy_matches_configured_error_rate() {
        let (_, _, db) = setup();
        let acc = db.accuracy();
        assert!(
            (0.80..0.90).contains(&acc),
            "accuracy {acc} vs expected 0.85"
        );
    }

    #[test]
    fn zero_error_rate_is_exact() {
        let g = Germany::build();
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let db = GeoDb::build(
            &g,
            &plan,
            GeoDbConfig {
                city_error_rate: 0.0,
                nearby_error_fraction: 0.7,
                seed: 1,
            },
        );
        assert!((db.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_stay_in_state() {
        let (g, _, db) = setup();
        // Both error modes (nearest-in-state, biggest-in-state) stay within
        // the federal state, so state-level analyses are robust — one
        // reason the paper's outbreak comparison works at state level.
        for (_net, e) in db.entries.iter() {
            assert_eq!(
                g.district(e.located).state,
                g.district(e.truth).state,
                "geo error crossed a state border"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Germany::build();
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let a = GeoDb::build(&g, &plan, GeoDbConfig::default());
        let b = GeoDb::build(&g, &plan, GeoDbConfig::default());
        for alloc in plan.allocations() {
            assert_eq!(a.lookup(alloc.network), b.lookup(alloc.network));
        }
    }

    #[test]
    fn unknown_address_misses() {
        let (_, _, db) = setup();
        assert!(db.lookup(Ipv4Addr::new(8, 8, 8, 8)).is_none());
    }

    #[test]
    fn rekeying_preserves_entries() {
        let (_, plan, db) = setup();
        // A toy prefix-preserving transform: XOR the top byte.
        let xform = |a: Ipv4Addr| Ipv4Addr::from(u32::from(a) ^ 0xA5000000);
        let rekeyed = db.rekeyed(xform);
        assert_eq!(rekeyed.len(), db.len());
        for a in plan.allocations() {
            let orig = db.lookup(a.network).unwrap();
            let via = rekeyed.lookup(xform(a.network)).unwrap();
            assert_eq!(orig, via);
        }
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(Ipv4Addr::new(1, 2, 3, 4), 0), 0);
        assert_eq!(
            mask(Ipv4Addr::new(1, 2, 3, 4), 32),
            u32::from(Ipv4Addr::new(1, 2, 3, 4))
        );
        assert_eq!(
            mask(Ipv4Addr::new(10, 20, 255, 255), 18),
            u32::from(Ipv4Addr::new(10, 20, 192, 0))
        );
    }
}
