//! The 16 German federal states (Bundesländer), with 2020 census-level
//! populations, capital coordinates, real district (Kreis) counts and
//! leading ZIP digits — the skeleton on which districts are synthesized.

use serde::{Deserialize, Serialize};

/// A German federal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FederalState {
    BadenWuerttemberg,
    Bayern,
    Berlin,
    Brandenburg,
    Bremen,
    Hamburg,
    Hessen,
    MecklenburgVorpommern,
    Niedersachsen,
    NordrheinWestfalen,
    RheinlandPfalz,
    Saarland,
    Sachsen,
    SachsenAnhalt,
    SchleswigHolstein,
    Thueringen,
}

impl FederalState {
    /// All 16 states, in a fixed canonical order.
    pub const ALL: [FederalState; 16] = [
        FederalState::BadenWuerttemberg,
        FederalState::Bayern,
        FederalState::Berlin,
        FederalState::Brandenburg,
        FederalState::Bremen,
        FederalState::Hamburg,
        FederalState::Hessen,
        FederalState::MecklenburgVorpommern,
        FederalState::Niedersachsen,
        FederalState::NordrheinWestfalen,
        FederalState::RheinlandPfalz,
        FederalState::Saarland,
        FederalState::Sachsen,
        FederalState::SachsenAnhalt,
        FederalState::SchleswigHolstein,
        FederalState::Thueringen,
    ];

    /// Full German name.
    pub fn name(self) -> &'static str {
        match self {
            FederalState::BadenWuerttemberg => "Baden-Württemberg",
            FederalState::Bayern => "Bayern",
            FederalState::Berlin => "Berlin",
            FederalState::Brandenburg => "Brandenburg",
            FederalState::Bremen => "Bremen",
            FederalState::Hamburg => "Hamburg",
            FederalState::Hessen => "Hessen",
            FederalState::MecklenburgVorpommern => "Mecklenburg-Vorpommern",
            FederalState::Niedersachsen => "Niedersachsen",
            FederalState::NordrheinWestfalen => "Nordrhein-Westfalen",
            FederalState::RheinlandPfalz => "Rheinland-Pfalz",
            FederalState::Saarland => "Saarland",
            FederalState::Sachsen => "Sachsen",
            FederalState::SachsenAnhalt => "Sachsen-Anhalt",
            FederalState::SchleswigHolstein => "Schleswig-Holstein",
            FederalState::Thueringen => "Thüringen",
        }
    }

    /// Official two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            FederalState::BadenWuerttemberg => "BW",
            FederalState::Bayern => "BY",
            FederalState::Berlin => "BE",
            FederalState::Brandenburg => "BB",
            FederalState::Bremen => "HB",
            FederalState::Hamburg => "HH",
            FederalState::Hessen => "HE",
            FederalState::MecklenburgVorpommern => "MV",
            FederalState::Niedersachsen => "NI",
            FederalState::NordrheinWestfalen => "NW",
            FederalState::RheinlandPfalz => "RP",
            FederalState::Saarland => "SL",
            FederalState::Sachsen => "SN",
            FederalState::SachsenAnhalt => "ST",
            FederalState::SchleswigHolstein => "SH",
            FederalState::Thueringen => "TH",
        }
    }

    /// 2020 population (thousands).
    pub fn population_thousands(self) -> u32 {
        match self {
            FederalState::BadenWuerttemberg => 11_100,
            FederalState::Bayern => 13_125,
            FederalState::Berlin => 3_669,
            FederalState::Brandenburg => 2_522,
            FederalState::Bremen => 681,
            FederalState::Hamburg => 1_847,
            FederalState::Hessen => 6_288,
            FederalState::MecklenburgVorpommern => 1_608,
            FederalState::Niedersachsen => 7_994,
            FederalState::NordrheinWestfalen => 17_947,
            FederalState::RheinlandPfalz => 4_094,
            FederalState::Saarland => 987,
            FederalState::Sachsen => 4_072,
            FederalState::SachsenAnhalt => 2_195,
            FederalState::SchleswigHolstein => 2_904,
            FederalState::Thueringen => 2_133,
        }
    }

    /// Real number of districts (kreisfreie Städte + Landkreise).
    pub fn district_count(self) -> usize {
        match self {
            FederalState::BadenWuerttemberg => 44,
            FederalState::Bayern => 96,
            FederalState::Berlin => 1,
            FederalState::Brandenburg => 18,
            FederalState::Bremen => 2,
            FederalState::Hamburg => 1,
            FederalState::Hessen => 26,
            FederalState::MecklenburgVorpommern => 8,
            FederalState::Niedersachsen => 45,
            FederalState::NordrheinWestfalen => 53,
            FederalState::RheinlandPfalz => 36,
            FederalState::Saarland => 6,
            FederalState::Sachsen => 13,
            FederalState::SachsenAnhalt => 14,
            FederalState::SchleswigHolstein => 15,
            FederalState::Thueringen => 23,
        }
    }

    /// Capital city name.
    pub fn capital(self) -> &'static str {
        match self {
            FederalState::BadenWuerttemberg => "Stuttgart",
            FederalState::Bayern => "München",
            FederalState::Berlin => "Berlin",
            FederalState::Brandenburg => "Potsdam",
            FederalState::Bremen => "Bremen",
            FederalState::Hamburg => "Hamburg",
            FederalState::Hessen => "Wiesbaden",
            FederalState::MecklenburgVorpommern => "Schwerin",
            FederalState::Niedersachsen => "Hannover",
            FederalState::NordrheinWestfalen => "Düsseldorf",
            FederalState::RheinlandPfalz => "Mainz",
            FederalState::Saarland => "Saarbrücken",
            FederalState::Sachsen => "Dresden",
            FederalState::SachsenAnhalt => "Magdeburg",
            FederalState::SchleswigHolstein => "Kiel",
            FederalState::Thueringen => "Erfurt",
        }
    }

    /// Capital coordinates (latitude, longitude).
    pub fn capital_coords(self) -> (f64, f64) {
        match self {
            FederalState::BadenWuerttemberg => (48.775, 9.182),
            FederalState::Bayern => (48.137, 11.575),
            FederalState::Berlin => (52.520, 13.405),
            FederalState::Brandenburg => (52.396, 13.058),
            FederalState::Bremen => (53.079, 8.801),
            FederalState::Hamburg => (53.551, 9.994),
            FederalState::Hessen => (50.082, 8.239),
            FederalState::MecklenburgVorpommern => (53.635, 11.401),
            FederalState::Niedersachsen => (52.375, 9.732),
            FederalState::NordrheinWestfalen => (51.227, 6.773),
            FederalState::RheinlandPfalz => (49.992, 8.247),
            FederalState::Saarland => (49.240, 6.997),
            FederalState::Sachsen => (51.050, 13.738),
            FederalState::SachsenAnhalt => (52.131, 11.640),
            FederalState::SchleswigHolstein => (54.323, 10.123),
            FederalState::Thueringen => (50.984, 11.030),
        }
    }

    /// A representative leading ZIP digit pair for the state (German ZIP
    /// zones do not align perfectly with state borders; this is the
    /// dominant zone, good enough for ZIP-area aggregation).
    pub fn zip_zone(self) -> u8 {
        match self {
            FederalState::BadenWuerttemberg => 70,
            FederalState::Bayern => 80,
            FederalState::Berlin => 10,
            FederalState::Brandenburg => 14,
            FederalState::Bremen => 28,
            FederalState::Hamburg => 20,
            FederalState::Hessen => 60,
            FederalState::MecklenburgVorpommern => 19,
            FederalState::Niedersachsen => 30,
            FederalState::NordrheinWestfalen => 40,
            FederalState::RheinlandPfalz => 55,
            FederalState::Saarland => 66,
            FederalState::Sachsen => 1,
            FederalState::SachsenAnhalt => 39,
            FederalState::SchleswigHolstein => 24,
            FederalState::Thueringen => 99,
        }
    }

    /// Index in [`FederalState::ALL`].
    pub fn index(self) -> usize {
        FederalState::ALL
            .iter()
            .position(|&s| s == self)
            .expect("state in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_states() {
        assert_eq!(FederalState::ALL.len(), 16);
        let names: std::collections::HashSet<_> =
            FederalState::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn population_sums_to_germany() {
        let total: u32 = FederalState::ALL
            .iter()
            .map(|s| s.population_thousands())
            .sum();
        // 2020 Germany: ≈ 83.2 M.
        assert!((82_000..84_500).contains(&total), "total {total}k");
    }

    #[test]
    fn district_counts_sum_to_401() {
        let total: usize = FederalState::ALL.iter().map(|s| s.district_count()).sum();
        assert_eq!(total, 401);
    }

    #[test]
    fn nrw_is_largest() {
        let max = FederalState::ALL
            .iter()
            .max_by_key(|s| s.population_thousands())
            .unwrap();
        assert_eq!(*max, FederalState::NordrheinWestfalen);
    }

    #[test]
    fn index_roundtrip() {
        for (i, s) in FederalState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn coords_inside_germany() {
        for s in FederalState::ALL {
            let (lat, lon) = s.capital_coords();
            assert!((47.0..55.5).contains(&lat), "{}: lat {lat}", s.name());
            assert!((5.5..15.5).contains(&lon), "{}: lon {lon}", s.name());
        }
    }
}
