//! Districts (Kreise and kreisfreie Städte).
//!
//! Germany has 401 districts; Figure 3 of the paper colours a map of
//! them. We anchor each state with its real capital and the major
//! cities, include the paper's outbreak districts (Berlin, Gütersloh,
//! Warendorf) with their real populations and coordinates, and
//! synthesize the remaining (mostly rural) districts deterministically
//! such that each state's population is conserved.

use serde::{Deserialize, Serialize};

use crate::state::FederalState;

/// Stable district identifier (index into [`crate::Germany::districts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DistrictId(pub u16);

/// Urbanization class; drives adoption affinity and ISP mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UrbanClass {
    /// Large city (kreisfreie Stadt ≥ 500k).
    Metro,
    /// City district, 100k–500k.
    Urban,
    /// Mixed Landkreis.
    Suburban,
    /// Rural Landkreis.
    Rural,
}

/// One district.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct District {
    /// Stable id.
    pub id: DistrictId,
    /// Display name.
    pub name: String,
    /// Containing federal state.
    pub state: FederalState,
    /// Resident population.
    pub population: u32,
    /// Centroid latitude.
    pub lat: f64,
    /// Centroid longitude.
    pub lon: f64,
    /// Leading ZIP digits ("ZIP area" of Fig. 3), e.g. "33" for Gütersloh.
    pub zip_prefix: String,
    /// Urbanization class.
    pub urban: UrbanClass,
}

impl District {
    /// True for the paper's first outbreak district (Berlin, June 18).
    pub fn is_berlin(&self) -> bool {
        self.state == FederalState::Berlin
    }
}

/// Real anchor cities: (name, state, population, lat, lon, zip prefix).
/// Populations are city/district values around 2020.
pub(crate) const ANCHORS: &[(&str, FederalState, u32, f64, f64, &str)] = &[
    (
        "Berlin",
        FederalState::Berlin,
        3_669_000,
        52.520,
        13.405,
        "10",
    ),
    (
        "Hamburg",
        FederalState::Hamburg,
        1_847_000,
        53.551,
        9.994,
        "20",
    ),
    (
        "München",
        FederalState::Bayern,
        1_484_000,
        48.137,
        11.575,
        "80",
    ),
    (
        "Köln",
        FederalState::NordrheinWestfalen,
        1_086_000,
        50.938,
        6.960,
        "50",
    ),
    (
        "Frankfurt am Main",
        FederalState::Hessen,
        753_000,
        50.110,
        8.682,
        "60",
    ),
    (
        "Stuttgart",
        FederalState::BadenWuerttemberg,
        635_000,
        48.775,
        9.182,
        "70",
    ),
    (
        "Düsseldorf",
        FederalState::NordrheinWestfalen,
        620_000,
        51.227,
        6.773,
        "40",
    ),
    (
        "Leipzig",
        FederalState::Sachsen,
        593_000,
        51.340,
        12.374,
        "04",
    ),
    (
        "Dortmund",
        FederalState::NordrheinWestfalen,
        588_000,
        51.513,
        7.465,
        "44",
    ),
    (
        "Essen",
        FederalState::NordrheinWestfalen,
        583_000,
        51.455,
        7.011,
        "45",
    ),
    ("Bremen", FederalState::Bremen, 567_000, 53.079, 8.801, "28"),
    (
        "Dresden",
        FederalState::Sachsen,
        557_000,
        51.050,
        13.738,
        "01",
    ),
    (
        "Hannover",
        FederalState::Niedersachsen,
        536_000,
        52.375,
        9.732,
        "30",
    ),
    (
        "Nürnberg",
        FederalState::Bayern,
        518_000,
        49.453,
        11.077,
        "90",
    ),
    (
        "Duisburg",
        FederalState::NordrheinWestfalen,
        498_000,
        51.434,
        6.762,
        "47",
    ),
    // The paper's June-23 outbreak districts:
    (
        "Gütersloh",
        FederalState::NordrheinWestfalen,
        364_000,
        51.907,
        8.379,
        "33",
    ),
    (
        "Warendorf",
        FederalState::NordrheinWestfalen,
        277_000,
        51.953,
        7.992,
        "48",
    ),
    // State capitals not yet covered:
    (
        "Potsdam",
        FederalState::Brandenburg,
        180_000,
        52.396,
        13.058,
        "14",
    ),
    (
        "Wiesbaden",
        FederalState::Hessen,
        278_000,
        50.082,
        8.239,
        "65",
    ),
    (
        "Schwerin",
        FederalState::MecklenburgVorpommern,
        96_000,
        53.635,
        11.401,
        "19",
    ),
    (
        "Mainz",
        FederalState::RheinlandPfalz,
        217_000,
        49.992,
        8.247,
        "55",
    ),
    (
        "Saarbrücken",
        FederalState::Saarland,
        330_000,
        49.240,
        6.997,
        "66",
    ),
    (
        "Magdeburg",
        FederalState::SachsenAnhalt,
        236_000,
        52.131,
        11.640,
        "39",
    ),
    (
        "Kiel",
        FederalState::SchleswigHolstein,
        247_000,
        54.323,
        10.123,
        "24",
    ),
    (
        "Erfurt",
        FederalState::Thueringen,
        214_000,
        50.984,
        11.030,
        "99",
    ),
    (
        "Bremerhaven",
        FederalState::Bremen,
        114_000,
        53.540,
        8.586,
        "27",
    ),
];

/// Deterministically synthesizes the full 401-district list.
///
/// Anchors come first (in the order above, so Berlin is always
/// `DistrictId(0)`), then per-state synthetic districts that absorb the
/// remaining population. Synthetic district sizes follow a smooth
/// decreasing profile (a Zipf-ish tail), their coordinates fan out
/// around the state capital, and ZIP prefixes derive from the state's
/// zone.
pub(crate) fn build_districts() -> Vec<District> {
    let mut districts: Vec<District> = Vec::with_capacity(401);

    for (name, state, pop, lat, lon, zip) in ANCHORS {
        districts.push(District {
            id: DistrictId(districts.len() as u16),
            name: (*name).to_owned(),
            state: *state,
            population: *pop,
            lat: *lat,
            lon: *lon,
            zip_prefix: (*zip).to_owned(),
            urban: classify(*pop),
        });
    }

    for state in FederalState::ALL {
        let anchored: Vec<&District> = districts.iter().filter(|d| d.state == state).collect();
        let anchored_count = anchored.len();
        let anchored_pop: u64 = anchored.iter().map(|d| u64::from(d.population)).sum();
        let remaining_count = state.district_count().saturating_sub(anchored_count);
        if remaining_count == 0 {
            continue;
        }
        let remaining_pop =
            (u64::from(state.population_thousands()) * 1000).saturating_sub(anchored_pop);

        // Zipf-like weights w_i = 1 / (i + 3): big Landkreise first.
        let weights: Vec<f64> = (0..remaining_count)
            .map(|i| 1.0 / (i as f64 + 3.0))
            .collect();
        let weight_sum: f64 = weights.iter().sum();

        let (cap_lat, cap_lon) = state.capital_coords();
        let mut allocated = 0u64;
        for (i, weight) in weights.iter().enumerate() {
            let pop = if i + 1 == remaining_count {
                remaining_pop - allocated // exact conservation
            } else {
                let p = (remaining_pop as f64 * weight / weight_sum) as u64;
                allocated += p;
                p
            };
            // Deterministic fan-out: ring position by golden-angle steps.
            let angle = i as f64 * 2.399_963; // golden angle, radians
            let radius_deg = 0.25 + 0.9 * ((i % 7) as f64 / 7.0);
            let lat = cap_lat + radius_deg * angle.sin();
            let lon = cap_lon + radius_deg * 1.4 * angle.cos();
            let zip = format!(
                "{:02}",
                (u32::from(state.zip_zone()) + 1 + (i as u32 % 9)) % 100
            );
            districts.push(District {
                id: DistrictId(districts.len() as u16),
                name: format!("Landkreis {} {}", state.abbrev(), i + 1),
                state,
                population: pop as u32,
                lat,
                lon,
                zip_prefix: zip,
                urban: classify(pop as u32),
            });
        }
    }

    districts
}

fn classify(population: u32) -> UrbanClass {
    match population {
        p if p >= 500_000 => UrbanClass::Metro,
        p if p >= 250_000 => UrbanClass::Urban,
        p if p >= 120_000 => UrbanClass::Suburban,
        _ => UrbanClass::Rural,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_hundred_one_districts() {
        assert_eq!(build_districts().len(), 401);
    }

    #[test]
    fn berlin_is_district_zero() {
        let d = build_districts();
        assert_eq!(d[0].name, "Berlin");
        assert_eq!(d[0].id, DistrictId(0));
        assert!(d[0].is_berlin());
    }

    #[test]
    fn outbreak_districts_present() {
        let d = build_districts();
        for name in ["Berlin", "Gütersloh", "Warendorf"] {
            assert!(d.iter().any(|x| x.name == name), "{name} missing");
        }
        let gt = d.iter().find(|x| x.name == "Gütersloh").unwrap();
        assert_eq!(gt.state, FederalState::NordrheinWestfalen);
        assert_eq!(gt.zip_prefix, "33");
    }

    #[test]
    fn population_conserved_per_state() {
        let d = build_districts();
        for state in FederalState::ALL {
            let sum: u64 = d
                .iter()
                .filter(|x| x.state == state)
                .map(|x| u64::from(x.population))
                .sum();
            let want = u64::from(state.population_thousands()) * 1000;
            assert_eq!(sum, want, "{}", state.name());
        }
    }

    #[test]
    fn district_counts_match_states() {
        let d = build_districts();
        for state in FederalState::ALL {
            let n = d.iter().filter(|x| x.state == state).count();
            assert_eq!(n, state.district_count(), "{}", state.name());
        }
    }

    #[test]
    fn ids_are_sequential() {
        let d = build_districts();
        for (i, x) in d.iter().enumerate() {
            assert_eq!(x.id, DistrictId(i as u16));
        }
    }

    #[test]
    fn no_zero_population_districts() {
        // Every district must emit *some* traffic potential (Fig. 3:
        // "almost all districts emit requests").
        let d = build_districts();
        assert!(
            d.iter().all(|x| x.population > 10_000),
            "district with tiny population"
        );
    }

    #[test]
    fn urban_classification() {
        assert_eq!(classify(3_000_000), UrbanClass::Metro);
        assert_eq!(classify(300_000), UrbanClass::Urban);
        assert_eq!(classify(150_000), UrbanClass::Suburban);
        assert_eq!(classify(80_000), UrbanClass::Rural);
    }

    #[test]
    fn coordinates_plausible() {
        let d = build_districts();
        for x in &d {
            assert!((46.5..56.0).contains(&x.lat), "{}: lat {}", x.name, x.lat);
            assert!((4.5..16.5).contains(&x.lon), "{}: lon {}", x.name, x.lon);
        }
    }
}
