//! The assembled country model.

use serde::{Deserialize, Serialize};

use crate::district::{build_districts, District, DistrictId};
use crate::state::FederalState;

/// The full synthetic Germany: districts plus lookup structures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Germany {
    districts: Vec<District>,
}

impl Germany {
    /// Builds the canonical 401-district model (deterministic).
    pub fn build() -> Self {
        Germany {
            districts: build_districts(),
        }
    }

    /// All districts, indexable by `DistrictId`.
    pub fn districts(&self) -> &[District] {
        &self.districts
    }

    /// Looks up a district.
    pub fn district(&self, id: DistrictId) -> &District {
        &self.districts[usize::from(id.0)]
    }

    /// Finds a district by exact name.
    pub fn by_name(&self, name: &str) -> Option<&District> {
        self.districts.iter().find(|d| d.name == name)
    }

    /// All districts of a state.
    pub fn in_state(&self, state: FederalState) -> impl Iterator<Item = &District> {
        self.districts.iter().filter(move |d| d.state == state)
    }

    /// Total population.
    pub fn population(&self) -> u64 {
        self.districts.iter().map(|d| u64::from(d.population)).sum()
    }

    /// Great-circle distance between two districts, km (haversine).
    pub fn distance_km(&self, a: DistrictId, b: DistrictId) -> f64 {
        let da = self.district(a);
        let db = self.district(b);
        haversine_km(da.lat, da.lon, db.lat, db.lon)
    }

    /// The geographically nearest other district within the same state
    /// (used by the geolocation error model: city-level errors usually
    /// land nearby, per Poese et al.).
    pub fn nearest_in_state(&self, id: DistrictId) -> DistrictId {
        let d = self.district(id);
        self.in_state(d.state)
            .filter(|x| x.id != id)
            .min_by(|x, y| {
                let dx = haversine_km(d.lat, d.lon, x.lat, x.lon);
                let dy = haversine_km(d.lat, d.lon, y.lat, y.lon);
                dx.partial_cmp(&dy).expect("finite distances")
            })
            .map(|x| x.id)
            // Single-district states (Berlin, Hamburg): fall back to self.
            .unwrap_or(id)
    }

    /// Number of districts.
    pub fn len(&self) -> usize {
        self.districts.len()
    }

    /// Never true for the canonical model.
    pub fn is_empty(&self) -> bool {
        self.districts.is_empty()
    }
}

/// Haversine great-circle distance in kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const R_EARTH_KM: f64 = 6371.0;
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * R_EARTH_KM * a.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_population() {
        let g = Germany::build();
        assert_eq!(g.len(), 401);
        let pop = g.population();
        assert!((82_000_000..84_500_000).contains(&pop), "population {pop}");
    }

    #[test]
    fn lookup_by_name() {
        let g = Germany::build();
        assert!(g.by_name("Gütersloh").is_some());
        assert!(g.by_name("Atlantis").is_none());
    }

    #[test]
    fn haversine_known_distance() {
        // Berlin–München ≈ 504 km.
        let d = haversine_km(52.520, 13.405, 48.137, 11.575);
        assert!((480.0..530.0).contains(&d), "Berlin–München {d} km");
        // Zero distance.
        assert!(haversine_km(50.0, 8.0, 50.0, 8.0) < 1e-9);
    }

    #[test]
    fn guetersloh_warendorf_are_neighbors() {
        // The two June-23 outbreak districts are ~30 km apart.
        let g = Germany::build();
        let gt = g.by_name("Gütersloh").unwrap().id;
        let wa = g.by_name("Warendorf").unwrap().id;
        let d = g.distance_km(gt, wa);
        assert!(d < 50.0, "Gütersloh–Warendorf {d} km");
    }

    #[test]
    fn nearest_in_state_is_symmetric_enough() {
        let g = Germany::build();
        let gt = g.by_name("Gütersloh").unwrap().id;
        let nearest = g.nearest_in_state(gt);
        assert_ne!(nearest, gt);
        assert_eq!(g.district(nearest).state, g.district(gt).state);
    }

    #[test]
    fn single_district_state_nearest_is_self() {
        let g = Germany::build();
        let berlin = g.by_name("Berlin").unwrap().id;
        assert_eq!(g.nearest_in_state(berlin), berlin);
    }

    #[test]
    fn state_iteration() {
        let g = Germany::build();
        let nrw: Vec<_> = g.in_state(FederalState::NordrheinWestfalen).collect();
        assert_eq!(nrw.len(), 53);
    }
}
