//! Seeded samplers for the traffic generator.
//!
//! Since the sampler-swap PR these are thin fronts over
//! [`cwa_samplers`] (re-exported as [`crate::samplers`]): exact
//! constant-draw Poisson (inversion + PTRS) and Binomial (BINV +
//! BTPE), plus paired Box–Muller normals via
//! [`NormalCache`]. The flow-size helper stays here because its
//! packet-floor and bytes-per-packet jitter are traffic-model policy,
//! not distribution math.

use rand::Rng;

pub use cwa_samplers::{binomial, log_normal, poisson, standard_normal, NormalCache};

/// A flow-size draw: packets (≥ 2: a TCP flow has at least SYN+data) and
/// total bytes, log-normally distributed around `median_packets` with
/// bytes-per-packet jitter around `bytes_per_packet`.
///
/// One-shot form; the generator's hot path uses [`flow_size_with`] so
/// consecutive draws share Box–Muller pairs.
pub fn flow_size<R: Rng>(
    rng: &mut R,
    median_packets: f64,
    sigma: f64,
    bytes_per_packet: f64,
) -> (u64, u64) {
    flow_size_with(
        &mut NormalCache::new(),
        rng,
        median_packets,
        sigma,
        bytes_per_packet,
    )
}

/// [`flow_size`] drawing its normal through a caller-held
/// [`NormalCache`], so every second log-normal costs zero uniforms.
pub fn flow_size_with<R: Rng>(
    normals: &mut NormalCache,
    rng: &mut R,
    median_packets: f64,
    sigma: f64,
    bytes_per_packet: f64,
) -> (u64, u64) {
    let packets = normals
        .log_normal(rng, median_packets, sigma)
        .round()
        .max(2.0) as u64;
    let bpp = (bytes_per_packet * (0.85 + 0.3 * rng.gen::<f64>())).max(60.0);
    let bytes = (packets as f64 * bpp) as u64;
    (packets, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for mean in [0.1f64, 2.0, 12.0, 80.0] {
            let n = 30_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let got = total as f64 / f64::from(n);
            assert!((got - mean).abs() / mean < 0.05, "mean {mean}: got {got}");
        }
    }

    #[test]
    fn poisson_zero_and_negative() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn poisson_variance_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mean = 5.0;
        let n = 50_000;
        let draws: Vec<u64> = (0..n).map(|_| poisson(&mut rng, mean)).collect();
        let m = draws.iter().sum::<u64>() as f64 / f64::from(n);
        let var = draws.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / f64::from(n);
        assert!((var - mean).abs() / mean < 0.1, "variance {var}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / f64::from(n);
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let mut draws: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 20.0, 0.8)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[n / 2];
        assert!((median - 20.0).abs() / 20.0 < 0.05, "median {median}");
    }

    #[test]
    fn flow_size_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..10_000 {
            let (packets, bytes) = flow_size(&mut rng, 18.0, 0.9, 900.0);
            assert!(packets >= 2);
            assert!(bytes >= packets * 60, "bytes {bytes} packets {packets}");
            assert!(bytes <= packets * 1600);
        }
    }

    #[test]
    fn flow_size_cached_matches_bounds_and_median() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut normals = NormalCache::new();
        let n = 30_000;
        let mut packets: Vec<u64> = (0..n)
            .map(|_| {
                let (p, b) = flow_size_with(&mut normals, &mut rng, 18.0, 0.9, 900.0);
                assert!(p >= 2 && b >= p * 60 && b <= p * 1600);
                p
            })
            .collect();
        packets.sort_unstable();
        let median = packets[n / 2] as f64;
        assert!((median - 18.0).abs() / 18.0 < 0.06, "median {median}");
    }

    #[test]
    fn flow_sizes_are_skewed() {
        // Log-normal: mean > median (heavy right tail).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 30_000;
        let mut draws: Vec<u64> = (0..n)
            .map(|_| flow_size(&mut rng, 18.0, 0.9, 900.0).0)
            .collect();
        let mean = draws.iter().sum::<u64>() as f64 / f64::from(n);
        draws.sort_unstable();
        let median = draws[n as usize / 2] as f64;
        assert!(mean > median * 1.15, "mean {mean} vs median {median}");
    }
}
