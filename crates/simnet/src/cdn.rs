//! The CWA hosting infrastructure (the "CDN" of Figure 1).
//!
//! The real backend is operated on Open Telekom Cloud behind a CDN; its
//! documentation names the service prefixes the paper filtered on
//! ("2 IPv4 prefixes mentioned in the CWA backend documentation", §2),
//! and both the app API and the project website are served via HTTPS
//! from the same infrastructure — which is why the paper cannot tell
//! them apart in flow data. We model:
//!
//! * two synthetic IPv4 service prefixes with a handful of server
//!   addresses each,
//! * the two DNS names (API endpoint and website),
//! * daily diagnosis-key export files, sized with the *actual* export
//!   wire format from `cwa-exposure` so download flow sizes are honest.

use std::net::Ipv4Addr;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use cwa_crypto::p256::SigningKey;
use cwa_exposure::export::TemporaryExposureKeyExport;
use cwa_exposure::signature::{sign_export, SignatureInfo};
use cwa_exposure::tek::{DiagnosisKey, TemporaryExposureKey};
use cwa_exposure::time::EnIntervalNumber;

/// DNS name of the key-distribution / API endpoint (modelled on the real
/// `svc90.main.px.t-online.de`).
pub const API_DNS_NAME: &str = "svc90.cwa-cdn.example-telekom.de";

/// DNS name of the project website (modelled on `www.coronawarn.app`).
pub const WEBSITE_DNS_NAME: &str = "www.coronawarn-app.example.de";

/// The undocumented prefix CWA backend traffic migrates to under a
/// [`CdnMigration`] scenario. Deliberately *not* in
/// [`CdnConfig::service_prefixes`]: the §2 filter only knows the
/// documented prefixes, so migrated flows escape it — the scenario
/// models the measurement methodology silently going stale.
pub const MIGRATION_PREFIX: (Ipv4Addr, u8) = (Ipv4Addr::new(198, 51, 100, 0), 24);

/// A scenario overlay: from `day` on, a share of CWA backend traffic is
/// served from [`MIGRATION_PREFIX`] instead of the documented prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CdnMigration {
    /// First study day (0-based) the migration is active.
    pub day: u32,
    /// Percentage (0–100) of backend flows served from the new prefix.
    pub share_percent: u8,
}

/// The CDN address plan and serving parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdnConfig {
    /// The two public IPv4 service prefixes `(network, len)`.
    pub service_prefixes: [(Ipv4Addr, u8); 2],
    /// Number of distinct server addresses used per prefix.
    pub servers_per_prefix: u8,
    /// Optional mid-study migration to an undocumented prefix.
    pub migration: Option<CdnMigration>,
}

impl Default for CdnConfig {
    fn default() -> Self {
        CdnConfig {
            // Synthetic stand-ins for the documented backend prefixes.
            service_prefixes: [
                (Ipv4Addr::new(81, 200, 16, 0), 22),
                (Ipv4Addr::new(185, 139, 96, 0), 22),
            ],
            servers_per_prefix: 8,
            migration: None,
        }
    }
}

impl CdnConfig {
    /// A deterministic server address for a flow, spreading load across
    /// both prefixes and all servers.
    pub fn server_for(&self, selector: u64) -> Ipv4Addr {
        let (net, _len) = self.service_prefixes[(selector % 2) as usize];
        let host = 1 + (selector / 2) % u64::from(self.servers_per_prefix);
        Ipv4Addr::from(u32::from(net) + host as u32)
    }

    /// Like [`server_for`](CdnConfig::server_for), but day-aware: once a
    /// configured [`CdnMigration`] is active, the migrated share of
    /// selectors is served from [`MIGRATION_PREFIX`].
    pub fn server_for_day(&self, selector: u64, day: u32) -> Ipv4Addr {
        if let Some(m) = self.migration {
            if day >= m.day && selector % 100 < u64::from(m.share_percent) {
                let host = 1 + (selector / 100) % u64::from(self.servers_per_prefix);
                return Ipv4Addr::from(u32::from(MIGRATION_PREFIX.0) + host as u32);
            }
        }
        self.server_for(selector)
    }

    /// True if `addr` belongs to one of the service prefixes.
    pub fn is_service_addr(&self, addr: Ipv4Addr) -> bool {
        self.service_prefixes
            .iter()
            .any(|&(p, l)| cwa_netflow::flow::in_prefix(addr, p, l))
    }

    /// The backend's export-signing key (fixed, deterministic — the
    /// real key is pinned in the app).
    pub fn signing_key() -> SigningKey {
        let mut secret = [0u8; 32];
        secret[..16].copy_from_slice(b"cwa-backend-sign");
        secret[31] = 1;
        SigningKey::from_bytes(&secret)
    }

    /// Builds the day's key-export file for a given number of published
    /// keys, **signs it** (export.bin + export.sig, as on the real CDN),
    /// and returns the total download size in bytes. The flow generator
    /// uses this to size key-download responses; real key counts come
    /// from the upload pipeline.
    pub fn export_size_bytes<R: RngCore>(&self, rng: &mut R, day: u32, n_keys: usize) -> usize {
        let start = EnIntervalNumber(((1_592_179_200 / 600) as u32) + day * 144);
        let keys: Vec<DiagnosisKey> = (0..n_keys)
            .map(|_| {
                let tek = TemporaryExposureKey::generate(rng, start);
                DiagnosisKey::new(tek, 5)
            })
            .collect();
        let export = TemporaryExposureKeyExport::new_de(
            u64::from(day) * 86_400,
            (u64::from(day) + 1) * 86_400,
            keys,
        );
        let signed = sign_export(&export, &Self::signing_key(), &SignatureInfo::default());
        // Plus the zip container overhead observed on the real CDN.
        signed.export_bin.len() + signed.export_sig.len() + 150
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn two_disjoint_service_prefixes() {
        let cdn = CdnConfig::default();
        let [a, b] = cdn.service_prefixes;
        assert_ne!(a.0, b.0);
        assert!(!cwa_netflow::flow::in_prefix(b.0, a.0, a.1));
    }

    #[test]
    fn servers_within_prefixes() {
        let cdn = CdnConfig::default();
        for sel in 0..64u64 {
            assert!(cdn.is_service_addr(cdn.server_for(sel)), "selector {sel}");
        }
    }

    #[test]
    fn load_spread_across_both_prefixes() {
        let cdn = CdnConfig::default();
        let in_first = (0..100u64)
            .filter(|&s| {
                cwa_netflow::flow::in_prefix(
                    cdn.server_for(s),
                    cdn.service_prefixes[0].0,
                    cdn.service_prefixes[0].1,
                )
            })
            .count();
        assert_eq!(in_first, 50);
    }

    #[test]
    fn non_service_addresses_rejected() {
        let cdn = CdnConfig::default();
        assert!(!cdn.is_service_addr(Ipv4Addr::new(8, 8, 8, 8)));
        assert!(!cdn.is_service_addr(Ipv4Addr::new(84, 0, 0, 1)));
    }

    #[test]
    fn export_size_scales_with_keys() {
        let cdn = CdnConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let empty = cdn.export_size_bytes(&mut rng, 8, 0);
        let ten = cdn.export_size_bytes(&mut rng, 8, 10);
        let hundred = cdn.export_size_bytes(&mut rng, 8, 100);
        assert!(empty >= 316, "header+container: {empty}");
        assert!(ten > empty);
        assert!(hundred > ten);
        let per_key = (hundred - ten) as f64 / 90.0;
        assert!((24.0..40.0).contains(&per_key), "per-key {per_key}");
    }

    #[test]
    fn dns_names_differ() {
        assert_ne!(API_DNS_NAME, WEBSITE_DNS_NAME);
    }

    #[test]
    fn migration_moves_share_off_documented_prefixes() {
        let cdn = CdnConfig {
            migration: Some(CdnMigration {
                day: 5,
                share_percent: 40,
            }),
            ..CdnConfig::default()
        };
        // Before the migration day: identical to server_for.
        for sel in 0..200u64 {
            assert_eq!(cdn.server_for_day(sel, 4), cdn.server_for(sel));
        }
        // From the migration day on: exactly share_percent of selectors
        // land in the undocumented prefix, which the §2 filter misses.
        let migrated = (0..200u64)
            .filter(|&s| {
                let addr = cdn.server_for_day(s, 5);
                cwa_netflow::flow::in_prefix(addr, MIGRATION_PREFIX.0, MIGRATION_PREFIX.1)
            })
            .count();
        assert_eq!(migrated, 80);
        for sel in 0..200u64 {
            let addr = cdn.server_for_day(sel, 7);
            let documented = cdn.is_service_addr(addr);
            let undocumented =
                cwa_netflow::flow::in_prefix(addr, MIGRATION_PREFIX.0, MIGRATION_PREFIX.1);
            assert!(documented ^ undocumented, "selector {sel} in exactly one");
        }
    }

    #[test]
    fn no_migration_is_a_noop() {
        let cdn = CdnConfig::default();
        for sel in 0..100u64 {
            for day in [0, 5, 10] {
                assert_eq!(cdn.server_for_day(sel, day), cdn.server_for(sel));
            }
        }
    }
}
