//! The simulation orchestrator: one seeded run of the whole world.
//!
//! Wires together `cwa-geo` (country + address plan + geo DB),
//! `cwa-epidemic` (SEIR, adoption, activity, uploads), the traffic
//! generator, the vantage point, and the DNS study, producing a
//! [`SimOutput`] that contains exactly what the paper's authors had —
//! anonymized sampled flow records plus public side data — alongside
//! calibration ground truth that *only* tests may consult.

use std::collections::HashMap;

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cwa_epidemic::{
    ActivityModel, AdoptionConfig, AdoptionCurve, AdoptionModel, EpidemicConfig, EpidemicModel,
    EventKind, Scenario, ScenarioEvent, Timeline, UploadConfig, UploadPipeline,
};
use cwa_geo::{AddressPlan, AddressPlanConfig, DistrictId, GeoDb, GeoDbConfig, Germany, IspId};
use cwa_netflow::anonymize::CryptoPan;
use cwa_netflow::flow::FlowRecord;
use cwa_netflow::sink::FlowSink;

use crate::cdn::{CdnConfig, CdnMigration};
use crate::dns::{run_dns_study, DnsStudy, TopListModel};
use crate::traffic::{GroundTruth, TrafficConfig, TrafficModel};
use crate::vantage::{
    side_tables_with, IspSideEntry, ShardKeyMode, ThreadTrace, VantageConfig, VantagePoint,
    VantageRunStats,
};

/// Which scenario variant to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// The paper's world: outbreaks + media (default).
    Paper,
    /// Outbreaks happen, nobody reports on them (ablation).
    OutbreaksWithoutNews,
    /// Nothing happens at all (baseline).
    Quiet,
}

/// The scenario-tunable slice of the traffic generator's configuration
/// (the rest of [`TrafficConfig`] is calibration, not scenario).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficTuning {
    /// Background (non-CWA) flow volume as a ratio of CWA volume.
    pub background_ratio: f64,
    /// Fraction of a prefix's subscriber capacity active on a given day
    /// (the DSL reconnect / address-churn policy knob).
    pub active_subscriber_fraction: f64,
}

impl Default for TrafficTuning {
    fn default() -> Self {
        TrafficTuning {
            background_ratio: 0.6,
            active_subscriber_fraction: 0.45,
        }
    }
}

/// One synthetic outbreak added on top of the base scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtraOutbreak {
    /// Affected district.
    pub district: DistrictId,
    /// Study day (0-based) the outbreak starts.
    pub day: u32,
    /// Extra exposed individuals introduced on the start day.
    pub seed_cases: u32,
    /// Intensity of the accompanying *national* media pulse
    /// (0 ⇒ the outbreak goes unreported).
    pub media_intensity: f64,
}

/// Scenario-overlay edits to the base event list: remove all events
/// anchored to named districts and/or add one synthetic outbreak.
/// Fixed-size so [`SimConfig`] stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OutbreakTweaks {
    /// Districts whose events (seeds *and* media pulses) are dropped.
    pub remove: [Option<DistrictId>; 4],
    /// An additional outbreak, if any.
    pub extra: Option<ExtraOutbreak>,
}

impl OutbreakTweaks {
    /// Applies the tweaks to a built scenario.
    pub fn apply(&self, scenario: &mut Scenario) {
        scenario
            .events
            .retain(|ev| !self.remove.iter().flatten().any(|d| *d == ev.district));
        if let Some(extra) = self.extra {
            scenario.events.push(ScenarioEvent {
                day: extra.day,
                district: extra.district,
                kind: EventKind::OutbreakSeed {
                    seed_cases: extra.seed_cases,
                },
            });
            if extra.media_intensity > 0.0 {
                scenario.events.push(ScenarioEvent {
                    day: extra.day,
                    district: extra.district,
                    kind: EventKind::MediaPulse {
                        intensity: extra.media_intensity,
                        decay_days: 2.5,
                        national: true,
                        isp_only: None,
                    },
                });
            }
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Traffic volume scale (1.0 = all of Germany; figures are
    /// normalized, so smaller scales reproduce the same shapes faster).
    pub scale: f64,
    /// Master seed (all submodels derive from it deterministically).
    pub seed: u64,
    /// Days to simulate (the paper's window is 11).
    pub days: u32,
    /// Scenario variant.
    pub scenario: ScenarioKind,
    /// Address-plan granularity.
    pub plan: AddressPlanConfig,
    /// Geolocation-DB error model.
    pub geodb: GeoDbConfig,
    /// Vantage-point (sampling/cache/anonymization) settings.
    pub vantage: VantageConfig,
    /// Drive the vantage point with one crossbeam worker per router
    /// (bit-identical output, faster at large scales).
    pub parallel: bool,
    /// Adoption-curve family and parameters.
    pub adoption: AdoptionConfig,
    /// Scenario-tunable traffic knobs.
    pub traffic: TrafficTuning,
    /// Optional mid-study CDN migration to an undocumented prefix.
    pub cdn_migration: Option<CdnMigration>,
    /// Edits to the base scenario's outbreak/media events.
    pub outbreaks: OutbreakTweaks,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scale: 0.05,
            seed: 0x2020_0616,
            days: 11,
            scenario: ScenarioKind::Paper,
            plan: AddressPlanConfig::default(),
            geodb: GeoDbConfig::default(),
            vantage: VantageConfig::default(),
            parallel: false,
            adoption: AdoptionConfig::default(),
            traffic: TrafficTuning::default(),
            cdn_migration: None,
            outbreaks: OutbreakTweaks::default(),
        }
    }
}

impl SimConfig {
    /// A configuration small enough for unit/integration tests: coarse
    /// prefixes, low scale, fewer simulated days unchanged.
    pub fn test_small() -> Self {
        SimConfig {
            scale: 0.004,
            plan: AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
            ..SimConfig::default()
        }
    }
}

/// Everything a simulation run produces.
pub struct SimOutput {
    /// Anonymized sampled flow records — the researchers' data set.
    pub records: Vec<FlowRecord>,
    /// Geolocation DB re-keyed to anonymized prefixes (side table).
    pub geodb: GeoDb,
    /// Anonymized prefix → ISP / router-ground-truth table (side table).
    pub isp_table: HashMap<u32, IspSideEntry>,
    /// Official national download curve (public statista data).
    pub downloads: AdoptionCurve,
    /// DNS popularity study results.
    pub dns: DnsStudy,
    /// Diagnosis-key publication pipeline outputs.
    pub uploads: UploadPipeline,
    /// The CDN model (its service prefixes are public documentation).
    pub cdn: CdnConfig,
    /// The scenario that was simulated.
    pub scenario: Scenario,
    /// The country model.
    pub germany: Germany,
    /// The address plan (ground truth; tests/calibration only).
    pub plan: AddressPlan,
    /// Traffic ground truth (tests/calibration only).
    pub truth: GroundTruth,
    /// The configuration used.
    pub config: SimConfig,
}

/// The simulation runner.
pub struct Simulation {
    config: SimConfig,
    metrics: Option<std::sync::Arc<cwa_obs::Registry>>,
    trace: Option<std::sync::Arc<cwa_obs::Tracer>>,
    chunk_capacity: Option<usize>,
}

impl Simulation {
    /// Creates a runner.
    pub fn new(config: SimConfig) -> Self {
        Simulation {
            config,
            metrics: None,
            trace: None,
            chunk_capacity: None,
        }
    }

    /// Overrides the collector's records-per-chunk drain batching
    /// (default `cwa_netflow::DEFAULT_CHUNK_CAPACITY`). Deliberately
    /// *not* part of [`SimConfig`]: chunking is an execution detail that
    /// never changes the record stream (asserted by the chunk-size
    /// invariance tests), so it must not enter config hashes.
    pub fn with_chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = Some(capacity);
        self
    }

    /// Attaches an observability registry. Instrumentation is atomic
    /// counters only and never touches an RNG stream, so the output is
    /// bit-identical with or without it (asserted by tests).
    pub fn with_metrics(mut self, registry: std::sync::Arc<cwa_obs::Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attaches the flight recorder: the run drivers wrap every
    /// pipeline phase (produce, export, drain, channel stalls) in trace
    /// spans. Like metrics, tracing reads the wall clock only and never
    /// an RNG stream, so the output is bit-identical with or without it
    /// (asserted by tests).
    pub fn with_trace(mut self, tracer: std::sync::Arc<cwa_obs::Tracer>) -> Self {
        self.trace = Some(tracer);
        self
    }

    /// Executes the full pipeline, materializing every record.
    ///
    /// This is the batch API: a thin composition of
    /// [`prepare`](Simulation::prepare) + streaming the traffic into a
    /// `Vec` sink, so the batch and streaming paths share one code path
    /// and stay bit-identical by construction.
    pub fn run(&self) -> SimOutput {
        let prepared = self.prepare();
        let mut records: Vec<FlowRecord> = Vec::new();
        let (truth, _stats) = prepared.run_traffic(&mut records);
        prepared.into_output(records, truth)
    }

    /// Builds the world — country, address plan, side tables, scenario,
    /// adoption/epidemic/uploads, DNS study — *without* generating any
    /// traffic. The returned [`PreparedSim`] can then stream records to
    /// any [`FlowSink`] via [`PreparedSim::run_traffic`].
    ///
    /// Every phase derives its RNG from the master seed independently,
    /// so splitting preparation from traffic generation does not change
    /// any stream.
    pub fn prepare(&self) -> PreparedSim {
        let cfg = self.config;
        let germany = Germany::build();
        let plan = AddressPlan::build(&germany, cfg.plan);
        let geodb = GeoDb::build(
            &germany,
            &plan,
            GeoDbConfig {
                seed: cfg.seed ^ 0x9E0,
                ..cfg.geodb
            },
        );
        let gt_isp: IspId = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .expect("market has a ground-truth ISP")
            .id;

        let mut scenario = match cfg.scenario {
            ScenarioKind::Paper => Scenario::paper_default(&germany, gt_isp),
            ScenarioKind::OutbreaksWithoutNews => Scenario::outbreaks_without_news(&germany),
            ScenarioKind::Quiet => Scenario::quiet(),
        };
        cfg.outbreaks.apply(&mut scenario);

        let timeline = Timeline { days: cfg.days };
        let adoption = AdoptionModel::new(cfg.adoption).run(&germany, &scenario, timeline);
        let epidemic = EpidemicModel::new(EpidemicConfig {
            seed: cfg.seed ^ 0x5E1,
            ..EpidemicConfig::default()
        })
        .run(&germany, &scenario, cfg.days);
        let uploads =
            UploadPipeline::derive(&germany, &epidemic, &adoption, UploadConfig::default());

        let activity = ActivityModel::default();
        let cdn = CdnConfig {
            migration: cfg.cdn_migration,
            ..CdnConfig::default()
        };

        // DNS popularity study.
        let media: Vec<f64> = (0..timeline.hours())
            .map(|h| scenario.national_media_factor(h))
            .collect();
        let dns = run_dns_study(
            &TopListModel {
                seed: cfg.seed ^ 0xD45,
                ..TopListModel::default()
            },
            &adoption,
            &activity,
            &media,
            cfg.days,
        );

        // Side tables the operator hands over together with the traces.
        // Built from the *same* Crypto-PAn key the vantage point will
        // use, and the realistic router map (rural aggregation error).
        let routers = cwa_geo::RouterMap::build(
            &germany,
            &plan,
            cwa_geo::RouterMapConfig {
                seed: cfg.seed ^ 0xB46,
                ..Default::default()
            },
        );
        let cryptopan = CryptoPan::new(&cfg.vantage.anon_key);
        let (geodb_anon, isp_table) = side_tables_with(&cryptopan, &plan, &geodb, Some(&routers));
        // Daily export size: the real file the app fetches, sized by the
        // day's published key count via the actual wire format.
        let mut size_rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xE47);
        let export_sizes: Vec<f64> = (0..cfg.days)
            .map(|day| {
                let keys = uploads.keys.get(day as usize).copied().unwrap_or(0.0) as usize;
                cdn.export_size_bytes(&mut size_rng, day, keys) as f64
            })
            .collect();

        PreparedSim {
            config: cfg,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            chunk_capacity: self.chunk_capacity,
            germany,
            plan,
            geodb: geodb_anon,
            isp_table,
            scenario,
            downloads: adoption,
            uploads,
            dns,
            cdn,
            activity,
            export_sizes,
            geodb_raw: geodb,
            router_map: routers,
        }
    }
}

/// A fully built world, ready to generate traffic. Produced by
/// [`Simulation::prepare`]; every field except the traffic itself.
///
/// The side tables (`geodb`, `isp_table`) are available *before* the
/// traffic run, which is what lets a streaming study construct its
/// analysis consumers up front and fuse simulate + analyze into one
/// pass.
pub struct PreparedSim {
    /// The configuration used.
    pub config: SimConfig,
    metrics: Option<std::sync::Arc<cwa_obs::Registry>>,
    trace: Option<std::sync::Arc<cwa_obs::Tracer>>,
    chunk_capacity: Option<usize>,
    /// The country model.
    pub germany: Germany,
    /// The address plan (ground truth; tests/calibration only).
    pub plan: AddressPlan,
    /// Geolocation DB re-keyed to anonymized prefixes (side table).
    pub geodb: GeoDb,
    /// Anonymized prefix → ISP / router-ground-truth table (side table).
    pub isp_table: HashMap<u32, IspSideEntry>,
    /// The scenario being simulated.
    pub scenario: Scenario,
    /// Official national download curve (public statista data).
    pub downloads: AdoptionCurve,
    /// Diagnosis-key publication pipeline outputs.
    pub uploads: UploadPipeline,
    /// DNS popularity study results.
    pub dns: DnsStudy,
    /// The CDN model (its service prefixes are public documentation).
    pub cdn: CdnConfig,
    activity: ActivityModel,
    export_sizes: Vec<f64>,
    /// Raw (non-anonymized) geolocation DB — kept so side tables can be
    /// re-keyed for shards with their own anonymization keys.
    geodb_raw: GeoDb,
    /// Realistic router map used for ground-truth side-table entries.
    router_map: cwa_geo::RouterMap,
}

impl PreparedSim {
    /// Generates the traffic and streams every collected, anonymized
    /// record into `sink`, in chunks of one export hour — the collector
    /// never holds more than one chunk. Calls `sink.finish()` after the
    /// last record. Returns the traffic ground truth and the vantage
    /// run statistics (including the collector's peak resident record
    /// count).
    ///
    /// Record order is identical between the serial and parallel
    /// drivers and identical to the batch [`Simulation::run`] (which is
    /// this method with a `Vec` sink).
    pub fn run_traffic(&self, sink: &mut dyn FlowSink) -> (GroundTruth, VantageRunStats) {
        let cfg = self.config;
        let timeline = Timeline { days: cfg.days };
        let traffic_cfg = TrafficConfig {
            scale: cfg.scale,
            seed: cfg.seed ^ 0x7AF,
            background_ratio: cfg.traffic.background_ratio,
            active_subscriber_fraction: cfg.traffic.active_subscriber_fraction,
            ..TrafficConfig::default()
        };
        let mut vantage = VantagePoint::new(
            cfg.vantage,
            self.cdn.service_prefixes.to_vec(),
            cfg.plan.prefix_len,
        );
        if let Some(cap) = self.chunk_capacity {
            vantage.set_chunk_capacity(cap);
        }
        if let Some(registry) = &self.metrics {
            vantage.attach_metrics(registry, cfg.days);
        }
        if let Some(tracer) = &self.trace {
            vantage.set_trace(std::sync::Arc::clone(tracer));
        }
        let model = TrafficModel::new(
            &self.germany,
            &self.plan,
            &self.scenario,
            &self.downloads,
            self.activity,
            self.cdn.clone(),
            traffic_cfg,
            timeline.hours(),
        )
        .with_export_sizes(&self.export_sizes);
        let (truth, run_stats) = if cfg.parallel {
            crate::vantage::run_parallel_into(model, vantage, timeline.hours(), sink)
        } else {
            let mut vantage = vantage;
            let mut model = model;
            let progress = self
                .metrics
                .as_ref()
                .map(|r| crate::vantage::ProgressGauges::new(r, timeline.hours()));
            // Serial driver: the whole day loop lives on one thread
            // (pid 0, tid 0) — produce/export/drain spans per hour.
            let tr = self.trace.as_ref().map(|t| {
                t.set_process_name(0, "simulation");
                let tr = ThreadTrace::new(t, 0, 0, "day-loop");
                vantage.trace_collector_onto(t, std::sync::Arc::clone(&tr.buf));
                tr
            });
            for hour in 0..timeline.hours() {
                let produce_start = tr.as_ref().map(|tr| tr.buf.now_ns());
                model.generate_hour(hour, &mut |ev| vantage.observe(ev));
                if let (Some(tr), Some(start)) = (&tr, produce_start) {
                    tr.span_since(tr.produce, start);
                }
                let export_start = tr.as_ref().map(|tr| tr.buf.now_ns());
                vantage.end_of_hour(hour);
                if let (Some(tr), Some(start)) = (&tr, export_start) {
                    tr.span_since(tr.export, start);
                }
                let drain_start = tr.as_ref().map(|tr| tr.buf.now_ns());
                vantage.drain_records_into(sink);
                sink.checkpoint();
                if let (Some(tr), Some(start)) = (&tr, drain_start) {
                    tr.span_since(tr.drain, start);
                }
                if let Some(p) = &progress {
                    p.hour_done(hour);
                }
            }
            let truth = model.into_truth();
            let finish_start = tr.as_ref().map(|tr| tr.buf.now_ns());
            let stats = vantage.finish_into(timeline.hours() - 1, sink);
            sink.checkpoint();
            if let (Some(tr), Some(start)) = (&tr, finish_start) {
                tr.span_since(tr.finish, start);
            }
            (truth, stats)
        };
        if let Some(registry) = &self.metrics {
            publish_vantage_counters(registry, &run_stats);
        }
        sink.finish();
        (truth, run_stats)
    }

    /// Sharded form of [`run_traffic`](PreparedSim::run_traffic): splits
    /// the vantage fleet into `sinks.len()` shards (each with its own
    /// collector, worker thread and — per `key_mode` — Crypto-PAn key)
    /// and streams every shard's records into its own sink, in chunks of
    /// one export hour. Each sink's `finish()` is called by its worker
    /// after the final flush. Returns the traffic ground truth plus
    /// every shard's `(sink, run statistics)` in shard order.
    ///
    /// Under [`ShardKeyMode::Common`] the union of the shards' record
    /// streams is exactly the records of [`run_traffic`]
    /// — same set, partitioned by owning router.
    pub fn run_traffic_sharded<S: FlowSink + Send>(
        &self,
        key_mode: ShardKeyMode,
        sinks: Vec<S>,
    ) -> (GroundTruth, Vec<(S, VantageRunStats)>) {
        let cfg = self.config;
        let timeline = Timeline { days: cfg.days };
        let traffic_cfg = TrafficConfig {
            scale: cfg.scale,
            seed: cfg.seed ^ 0x7AF,
            background_ratio: cfg.traffic.background_ratio,
            active_subscriber_fraction: cfg.traffic.active_subscriber_fraction,
            ..TrafficConfig::default()
        };
        let mut vantages = VantagePoint::shard(
            cfg.vantage,
            self.cdn.service_prefixes.to_vec(),
            cfg.plan.prefix_len,
            sinks.len(),
            key_mode,
        );
        if let Some(cap) = self.chunk_capacity {
            for vantage in &mut vantages {
                vantage.set_chunk_capacity(cap);
            }
        }
        if let Some(registry) = &self.metrics {
            for vantage in &mut vantages {
                vantage.attach_metrics(registry, cfg.days);
            }
        }
        if let Some(tracer) = &self.trace {
            for vantage in &mut vantages {
                vantage.set_trace(std::sync::Arc::clone(tracer));
            }
        }
        let model = TrafficModel::new(
            &self.germany,
            &self.plan,
            &self.scenario,
            &self.downloads,
            self.activity,
            self.cdn.clone(),
            traffic_cfg,
            timeline.hours(),
        )
        .with_export_sizes(&self.export_sizes);
        let shards: Vec<(VantagePoint, S)> = vantages.into_iter().zip(sinks).collect();
        let (truth, results) = crate::vantage::run_sharded_into(model, shards, timeline.hours());
        if let Some(registry) = &self.metrics {
            // One fleet-wide publication of the summed per-shard stats,
            // under the same counter names as the unsharded run.
            let mut total = VantageRunStats::default();
            for (_, stats) in &results {
                let c = stats.cache;
                total.cache.packets_seen += c.packets_seen;
                total.cache.expired_inactive += c.expired_inactive;
                total.cache.expired_active += c.expired_active;
                total.cache.expired_emergency += c.expired_emergency;
                total.cache.expired_flush += c.expired_flush;
                total.dropped_datagrams += stats.dropped_datagrams;
                total.undecodable_datagrams += stats.undecodable_datagrams;
            }
            publish_vantage_counters(registry, &total);
        }
        (truth, results)
    }

    /// Re-keys the side tables (geolocation DB + prefix → ISP table)
    /// under an explicit Crypto-PAn key — what the operator hands over
    /// for a shard that anonymizes under its own key
    /// ([`ShardKeyMode::PerShard`]).
    pub fn side_tables_for_key(&self, key: &[u8; 32]) -> (GeoDb, HashMap<u32, IspSideEntry>) {
        side_tables_with(
            &CryptoPan::new(key),
            &self.plan,
            &self.geodb_raw,
            Some(&self.router_map),
        )
    }

    /// Assembles a [`SimOutput`] from this world plus the traffic run's
    /// products. `records` may be empty when the run was streamed into
    /// analysis consumers instead of materialized.
    pub fn into_output(self, records: Vec<FlowRecord>, truth: GroundTruth) -> SimOutput {
        SimOutput {
            records,
            geodb: self.geodb,
            isp_table: self.isp_table,
            downloads: self.downloads,
            dns: self.dns,
            uploads: self.uploads,
            cdn: self.cdn,
            scenario: self.scenario,
            germany: self.germany,
            plan: self.plan,
            truth,
            config: self.config,
        }
    }
}

/// Publishes a run's cache/transport statistics to the registry under
/// the shared counter names — one code path for the serial, parallel
/// and sharded drivers, so their observability output is comparable.
fn publish_vantage_counters(registry: &cwa_obs::Registry, stats: &VantageRunStats) {
    let c = stats.cache;
    registry
        .counter("simnet.cache.packets_seen")
        .add(c.packets_seen);
    registry
        .counter("simnet.cache.expired_inactive")
        .add(c.expired_inactive);
    registry
        .counter("simnet.cache.expired_active")
        .add(c.expired_active);
    registry
        .counter("simnet.cache.expired_emergency")
        .add(c.expired_emergency);
    registry
        .counter("simnet.cache.expired_flush")
        .add(c.expired_flush);
    registry
        .counter("simnet.cache.evictions")
        .add(c.expired_inactive + c.expired_active + c.expired_emergency + c.expired_flush);
    registry
        .counter("simnet.transport.dropped_datagrams")
        .add(stats.dropped_datagrams);
    registry
        .counter("simnet.transport.undecodable_datagrams")
        .add(stats.undecodable_datagrams);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run() -> SimOutput {
        Simulation::new(SimConfig {
            days: 4,
            ..SimConfig::test_small()
        })
        .run()
    }

    #[test]
    fn produces_records() {
        let out = small_run();
        assert!(!out.records.is_empty(), "no records collected");
        // All clients anonymized: none inside the real client ISP space
        // (84–95/8) — Crypto-PAn moves them essentially everywhere.
        let in_clear: usize = out
            .records
            .iter()
            .filter(|r| {
                let client = if out.cdn.is_service_addr(r.key.src_ip) {
                    r.key.dst_ip
                } else {
                    r.key.src_ip
                };
                out.plan.lookup(client).is_some()
            })
            .count();
        let frac = in_clear as f64 / out.records.len() as f64;
        assert!(frac < 0.1, "{frac} of clients resolvable in the raw plan");
    }

    #[test]
    fn side_tables_resolve_observed_clients() {
        let out = small_run();
        let mut hits = 0usize;
        let mut total = 0usize;
        // Extract clients exactly as the analysis pipeline does: only
        // flows with a CDN endpoint (the others get filtered out anyway).
        for r in &out.records {
            let client = if out.cdn.is_service_addr(r.key.src_ip) {
                r.key.dst_ip
            } else if out.cdn.is_service_addr(r.key.dst_ip) {
                r.key.src_ip
            } else {
                continue; // background traffic
            };
            total += 1;
            let net = cwa_geo::geodb::mask(client, out.config.plan.prefix_len);
            if out.isp_table.contains_key(&net) {
                hits += 1;
            }
        }
        assert!(total > 0);
        let frac = hits as f64 / total as f64;
        assert!(
            (frac - 1.0).abs() < 1e-9,
            "every CDN-flow client must resolve via the side table: {frac}"
        );
    }

    #[test]
    fn deterministic() {
        let a = Simulation::new(SimConfig {
            days: 3,
            ..SimConfig::test_small()
        })
        .run();
        let b = Simulation::new(SimConfig {
            days: 3,
            ..SimConfig::test_small()
        })
        .run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.truth.api_flows, b.truth.api_flows);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(SimConfig {
            days: 3,
            ..SimConfig::test_small()
        })
        .run();
        let b = Simulation::new(SimConfig {
            days: 3,
            seed: 99,
            ..SimConfig::test_small()
        })
        .run();
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn export_loss_fault_injection() {
        use crate::vantage::{ExportFormat, VantageConfig};
        let base = SimConfig {
            days: 3,
            ..SimConfig::test_small()
        };
        let clean = Simulation::new(base).run();

        // 5% transport loss: fewer records, analysis still functional,
        // and the collector's sequence-gap accounting sees the loss.
        let lossy = Simulation::new(SimConfig {
            vantage: VantageConfig {
                export_loss_rate: 0.05,
                ..base.vantage
            },
            ..base
        })
        .run();
        let ratio = lossy.records.len() as f64 / clean.records.len() as f64;
        assert!((0.90..0.99).contains(&ratio), "survival ratio {ratio}");

        // v9 under loss: lost template announcements only stall data
        // until re-announcement; most records still arrive.
        let lossy_v9 = Simulation::new(SimConfig {
            vantage: VantageConfig {
                export_loss_rate: 0.05,
                format: ExportFormat::V9,
                ..base.vantage
            },
            ..base
        })
        .run();
        let ratio9 = lossy_v9.records.len() as f64 / clean.records.len() as f64;
        assert!(ratio9 > 0.80, "v9 survival ratio {ratio9}");
    }

    #[test]
    fn v9_export_equals_v5() {
        use crate::vantage::{ExportFormat, VantageConfig};
        let base = SimConfig {
            days: 2,
            ..SimConfig::test_small()
        };
        let v5 = Simulation::new(base).run();
        let v9 = Simulation::new(SimConfig {
            vantage: VantageConfig {
                format: ExportFormat::V9,
                ..base.vantage
            },
            ..base
        })
        .run();
        // Identical sampling and caches; only the wire format differs —
        // and both codecs are lossless for our field set.
        assert_eq!(v5.records, v9.records);
    }

    #[test]
    fn parallel_equals_serial() {
        let base = SimConfig {
            days: 3,
            ..SimConfig::test_small()
        };
        let serial = Simulation::new(base).run();
        let parallel = Simulation::new(SimConfig {
            parallel: true,
            ..base
        })
        .run();
        assert_eq!(serial.records, parallel.records, "bit-identical records");
        assert_eq!(serial.truth.api_flows, parallel.truth.api_flows);
        assert_eq!(
            serial.truth.cwa_flows_by_hour,
            parallel.truth.cwa_flows_by_hour
        );
    }

    #[test]
    fn metrics_do_not_perturb_determinism() {
        use std::sync::Arc;
        let base = SimConfig {
            days: 3,
            ..SimConfig::test_small()
        };

        let plain_serial = Simulation::new(base).run();
        let plain_parallel = Simulation::new(SimConfig {
            parallel: true,
            ..base
        })
        .run();

        let reg_serial = Arc::new(cwa_obs::Registry::new());
        let metered_serial = Simulation::new(base)
            .with_metrics(Arc::clone(&reg_serial))
            .run();
        let reg_parallel = Arc::new(cwa_obs::Registry::new());
        let metered_parallel = Simulation::new(SimConfig {
            parallel: true,
            ..base
        })
        .with_metrics(Arc::clone(&reg_parallel))
        .run();

        // Bit-identical records across all four combinations of
        // {serial, parallel} × {metrics off, metrics on}.
        assert_eq!(
            plain_serial.records, metered_serial.records,
            "serial: metrics on == off"
        );
        assert_eq!(
            plain_serial.records, plain_parallel.records,
            "parallel == serial"
        );
        assert_eq!(
            plain_serial.records, metered_parallel.records,
            "metered parallel == serial"
        );
        assert_eq!(
            plain_serial.truth.api_flows,
            metered_parallel.truth.api_flows
        );

        // The logical counters themselves agree between drivers (only
        // wall-clock worker timers may differ).
        for name in [
            "simnet.traffic.flow_events",
            "simnet.traffic.flow_events.day00",
            "simnet.router.00.sampled_packets",
            "simnet.router.00.unsampled_packets",
            "simnet.cache.evictions",
            "simnet.cache.packets_seen",
            "netflow.collector.records",
            "netflow.collector.anonymized_addresses",
            "netflow.collector.sequence_lost",
        ] {
            assert_eq!(
                reg_serial.counter(name).get(),
                reg_parallel.counter(name).get(),
                "counter {name} must not depend on the driver"
            );
        }
        assert!(reg_serial.counter("simnet.traffic.flow_events").get() > 0);
        assert!(reg_serial.counter("netflow.collector.records").get() > 0);
        assert_eq!(
            reg_serial.counter("netflow.collector.records").get(),
            plain_serial.records.len() as u64,
            "collector counter matches the record set"
        );
    }

    #[test]
    fn streamed_run_matches_batch_and_bounds_residency() {
        use cwa_netflow::sink::CountingSink;
        let base = SimConfig {
            days: 3,
            ..SimConfig::test_small()
        };
        let batch = Simulation::new(base).run();

        // Stream the same config into a pure counter: same record
        // count, but the collector never held the full set.
        let prepared = Simulation::new(base).prepare();
        let mut sink = CountingSink::default();
        let (truth, stats) = prepared.run_traffic(&mut sink);
        assert!(sink.finished, "run_traffic signals end of stream");
        assert_eq!(sink.records, batch.records.len() as u64);
        assert_eq!(truth.api_flows, batch.truth.api_flows);
        assert!(
            stats.peak_resident_records < sink.records,
            "hourly chunks: peak {} of {} total",
            stats.peak_resident_records,
            sink.records
        );

        // Streaming into a Vec reproduces the batch records exactly.
        let prepared = Simulation::new(base).prepare();
        let mut records: Vec<FlowRecord> = Vec::new();
        prepared.run_traffic(&mut records);
        assert_eq!(records, batch.records);
    }

    #[test]
    fn sharded_union_equals_unsharded_set() {
        let base = SimConfig {
            days: 3,
            ..SimConfig::test_small()
        };
        let batch = Simulation::new(base).run();

        let sort_key = |r: &FlowRecord| {
            (
                r.first_ms,
                r.last_ms,
                r.key,
                r.bytes,
                r.packets,
                r.tcp_flags,
            )
        };
        let mut expected = batch.records.clone();
        expected.sort_by_key(sort_key);

        for shards in [1usize, 2, 3] {
            let prepared = Simulation::new(base).prepare();
            let sinks: Vec<Vec<FlowRecord>> = vec![Vec::new(); shards];
            let (truth, results) = prepared.run_traffic_sharded(ShardKeyMode::Common, sinks);
            assert_eq!(truth.api_flows, batch.truth.api_flows);
            let mut union: Vec<FlowRecord> = Vec::new();
            for (records, stats) in &results {
                union.extend_from_slice(records);
                assert!(
                    stats.peak_resident_records <= records.len() as u64,
                    "shard residency bounded by its own record count"
                );
            }
            union.sort_by_key(sort_key);
            assert_eq!(
                union, expected,
                "{shards}-shard union must equal the unsharded record set"
            );
        }
    }

    #[test]
    fn per_shard_keys_change_anonymization_but_not_volume() {
        let base = SimConfig {
            days: 2,
            ..SimConfig::test_small()
        };
        let common = Simulation::new(base)
            .prepare()
            .run_traffic_sharded(ShardKeyMode::Common, vec![Vec::<FlowRecord>::new(); 2]);
        let keyed = Simulation::new(base)
            .prepare()
            .run_traffic_sharded(ShardKeyMode::PerShard, vec![Vec::<FlowRecord>::new(); 2]);
        for ((a, _), (b, _)) in common.1.iter().zip(&keyed.1) {
            assert_eq!(a.len(), b.len(), "keying never changes record volume");
        }
        // Every per-shard key is derived (none equals the base key), so
        // each shard's addresses must actually re-anonymize.
        assert_ne!(common.1[0].0, keyed.1[0].0);
        assert_ne!(common.1[1].0, keyed.1[1].0);
    }

    #[test]
    fn scenario_variants_run() {
        for kind in [ScenarioKind::Quiet, ScenarioKind::OutbreaksWithoutNews] {
            let out = Simulation::new(SimConfig {
                days: 2,
                scenario: kind,
                ..SimConfig::test_small()
            })
            .run();
            assert!(out.records.len() < 10_000_000);
        }
    }
}
