//! The measurement vantage point (BENOCS' position in Figure 1).
//!
//! A handful of border routers in front of the CDN data center run
//! sampled NetFlow: each flow event from the traffic generator passes a
//! 1-in-N packet sampler; sampled packets are accounted into the
//! router's flow cache; expired cache entries are exported as NetFlow v5
//! datagrams to a collector that Crypto-PAn-anonymizes client addresses
//! (server prefixes stay in the clear, as in the paper's data set — they
//! are public documentation anyway).
//!
//! Each [`Router`] owns its flow cache *and its own seeded sampling
//! RNG*, so the vantage point can be driven serially or — routers being
//! independent — in parallel with one crossbeam worker per router
//! ([`run_parallel`]) with **bit-identical results** (a property the
//! test suite asserts).
//!
//! The vantage point also produces the **side tables** a cooperating
//! network operator would legitimately hand to researchers together with
//! anonymized traces:
//!
//! * the geolocation DB re-keyed to anonymized prefixes, and
//! * the ISP/router table: anonymized prefix → ISP, plus the *true*
//!   router district for the ground-truth ISP (the paper's "18 % of
//!   geolocations … from local routers within an ISP (ground truth
//!   since the router locations are known)").

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use cwa_geo::{AddressPlan, DistrictId, GeoDb, IspId};
use cwa_netflow::anonymize::CryptoPan;
use cwa_netflow::cache::{CacheStats, FlowCache, FlowCacheConfig};
use cwa_netflow::collector::{Collector, CollectorMetrics, CollectorTrace};
use cwa_netflow::flow::FlowRecord;
use cwa_netflow::sampling::sample_packet_count;
use cwa_netflow::sink::FlowSink;
use cwa_netflow::v5::packetize;
use cwa_netflow::v9::{V9Decoder, V9Exporter};
use cwa_obs::{Counter, NameId, Registry, TraceBuf, Tracer};

use crate::traffic::FlowEvent;

/// Which NetFlow wire format the routers export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportFormat {
    /// Classic fixed-layout NetFlow v5.
    V5,
    /// Template-based NetFlow v9 (RFC 3954).
    V9,
}

/// Vantage-point configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VantageConfig {
    /// Number of border routers (flow caches / export engines).
    pub routers: u8,
    /// Export wire format.
    pub format: ExportFormat,
    /// Packet sampling interval N (1-in-N).
    pub sampling_interval: u32,
    /// Flow-cache timeouts.
    pub cache: FlowCacheConfig,
    /// 32-byte Crypto-PAn key.
    pub anon_key: [u8; 32],
    /// Seed for the routers' sampling RNGs.
    pub sampling_seed: u64,
    /// Fault injection: probability an export datagram is lost between
    /// router and collector (UDP transport in the real world). The
    /// collector detects v5 losses via sequence gaps; v9 survives lost
    /// template announcements through periodic re-announcement.
    pub export_loss_rate: f64,
}

impl Default for VantageConfig {
    fn default() -> Self {
        VantageConfig {
            routers: 4,
            format: ExportFormat::V5,
            sampling_interval: 1000,
            cache: FlowCacheConfig::default(),
            anon_key: *b"cwa-repro-cryptopan-key-32bytes!",
            sampling_seed: 0x5A17,
            export_loss_rate: 0.0,
        }
    }
}

/// How a sharded vantage fleet derives each shard's Crypto-PAn key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardKeyMode {
    /// Every shard anonymizes under the base `anon_key`. One client
    /// prefix maps to one anonymized prefix fleet-wide, so merged
    /// per-shard analyses equal the single-vantage run exactly.
    Common,
    /// Each shard derives its own key from the base key (§2's
    /// per-engine anonymization). Realistic, but one client prefix
    /// observed by two shards anonymizes to two different prefixes, so
    /// cross-shard prefix analyses are no longer merge-exact.
    PerShard,
}

/// The per-shard Crypto-PAn keys for an `n`-shard fleet.
pub fn shard_keys(base: &[u8; 32], n: usize, mode: ShardKeyMode) -> Vec<[u8; 32]> {
    match mode {
        ShardKeyMode::Common => vec![*base; n],
        ShardKeyMode::PerShard => (0..n)
            .map(|i| {
                let mut material = Vec::with_capacity(40);
                material.extend_from_slice(base);
                material.extend_from_slice(&(i as u64).to_le_bytes());
                cwa_crypto::sha256(&material)
            })
            .collect(),
    }
}

/// One side-table entry per routing prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IspSideEntry {
    /// Owning ISP.
    pub isp: IspId,
    /// For the ground-truth ISP only: the district of the customer-facing
    /// router (exact). `None` for all other ISPs.
    pub router_district: Option<DistrictId>,
}

/// Per-router observability handles (single relaxed atomics on the
/// packet path; resolved once when metrics are attached).
#[derive(Clone)]
pub(crate) struct RouterMetrics {
    sampled: Arc<Counter>,
    unsampled: Arc<Counter>,
}

/// One border router: sampler + flow cache + export sequencing.
pub struct Router {
    /// Engine id used in export headers.
    pub id: u8,
    sampling_interval: u32,
    cache: FlowCache,
    rng: ChaCha8Rng,
    format: ExportFormat,
    /// v5 flow sequence counter.
    sequence: u32,
    /// v9 exporter state (template refresh, datagram sequence).
    v9: V9Exporter,
    /// Observability handles (None = uninstrumented, zero overhead).
    metrics: Option<RouterMetrics>,
}

impl Router {
    /// Creates a router with a deterministic per-router RNG stream.
    pub fn new(id: u8, cfg: &VantageConfig) -> Self {
        Router {
            id,
            sampling_interval: cfg.sampling_interval,
            cache: FlowCache::new(cfg.cache),
            rng: ChaCha8Rng::seed_from_u64(cfg.sampling_seed ^ (0x9E37 * (u64::from(id) + 1))),
            format: cfg.format,
            sequence: 0,
            v9: V9Exporter::new(u32::from(id)),
            metrics: None,
        }
    }

    /// Observes one flow event: samples its packets, accounts survivors.
    ///
    /// The metric increments happen *after* the sampling draw, so the
    /// RNG stream — and with it every downstream record — is identical
    /// with metrics on or off.
    pub fn observe(&mut self, ev: &FlowEvent) {
        let sampled = sample_packet_count(&mut self.rng, ev.packets, self.sampling_interval);
        if let Some(m) = &self.metrics {
            m.sampled.add(sampled);
            m.unsampled.add(ev.packets - sampled);
        }
        if sampled == 0 {
            return;
        }
        let bytes_per_packet = (ev.bytes / ev.packets.max(1)).max(40);
        let step = ev.duration_ms / sampled.max(1);
        for i in 0..sampled {
            let t = ev.start_ms + i * step;
            self.cache.account(ev.key, bytes_per_packet, 0x18, t);
        }
    }

    /// End-of-hour sweep; returns this router's export datagrams as
    /// wire bytes.
    pub fn end_of_hour(&mut self, hour: u32) -> Vec<bytes::Bytes> {
        let now_ms = u64::from(hour + 1) * 3_600_000;
        self.cache.sweep(now_ms);
        self.export(hour)
    }

    /// Final flush; returns the remaining export datagrams.
    pub fn finish(&mut self, hour: u32) -> Vec<bytes::Bytes> {
        self.cache.flush();
        self.export(hour)
    }

    fn export(&mut self, hour: u32) -> Vec<bytes::Bytes> {
        let expired = self.cache.take_expired();
        let unix_secs = (1_592_179_200 + u64::from(hour + 1) * 3600) as u32;
        match self.format {
            ExportFormat::V5 => {
                if expired.is_empty() {
                    return Vec::new();
                }
                let (packets, next) = packetize(
                    &expired,
                    self.id,
                    self.sampling_interval.min(0x3fff) as u16,
                    unix_secs,
                    self.sequence,
                );
                self.sequence = next;
                packets.into_iter().map(|p| p.encode()).collect()
            }
            ExportFormat::V9 => {
                // v9 datagrams carry up to ~24 of our records within a
                // typical MTU; the first datagram also announces the
                // template (even when no records expired, so the
                // collector always has it).
                if expired.is_empty() {
                    return Vec::new();
                }
                expired
                    .chunks(24)
                    .map(|chunk| {
                        self.v9
                            .export(chunk, unix_secs, (u64::from(hour) * 3_600_000) as u32)
                    })
                    .collect()
            }
        }
    }

    /// The router's cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Deterministically assigns a flow to a router by its client-side
/// routing prefix (clients of one region traverse one border router).
pub fn router_for(ev: &FlowEvent, plan_prefix_len: u8, routers: usize) -> usize {
    let client = if ev.downstream {
        ev.key.dst_ip
    } else {
        ev.key.src_ip
    };
    let prefix = cwa_geo::geodb::mask(client, plan_prefix_len);
    // Fibonacci hashing of the prefix.
    let h = (u64::from(prefix)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize % routers
}

/// Vantage-level observability handles shared by the serial and
/// parallel drivers (so both count the same logical events).
#[derive(Clone)]
pub(crate) struct VantageMetrics {
    registry: Arc<Registry>,
    flow_events: Arc<Counter>,
    flow_events_by_day: Vec<Arc<Counter>>,
}

impl VantageMetrics {
    /// Counts one generated flow event (total + per simulated day).
    fn note_event(&self, ev: &FlowEvent) {
        self.flow_events.inc();
        let day = (ev.start_ms / 86_400_000) as usize;
        if let Some(c) = self.flow_events_by_day.get(day) {
            c.inc();
        }
    }
}

/// Live run-progress gauges (`sim.progress.*`), shared by the serial,
/// parallel and sharded drivers so the `/progress` endpoint and the
/// `watch` dashboard see the same namespace regardless of driver.
///
/// Totals are published at construction; `hour_done` advances the
/// completion gauges after each simulated hour. Pure observation —
/// gauge stores only, no feedback into the drivers.
pub(crate) struct ProgressGauges {
    hours_done: Arc<cwa_obs::Gauge>,
    days_done: Arc<cwa_obs::Gauge>,
}

impl ProgressGauges {
    /// Publishes the run's totals and zeroes the completion gauges.
    pub(crate) fn new(registry: &Arc<Registry>, hours: u32) -> Self {
        registry
            .gauge("sim.progress.hours_total")
            .set(i64::from(hours));
        registry
            .gauge("sim.progress.days_total")
            .set(i64::from(hours.div_ceil(24)));
        registry.gauge("sim.progress.done").set(0);
        let hours_done = registry.gauge("sim.progress.hours_done");
        hours_done.set(0);
        let days_done = registry.gauge("sim.progress.days_done");
        days_done.set(0);
        ProgressGauges {
            hours_done,
            days_done,
        }
    }

    /// Marks simulated hour `hour` (0-based) complete.
    pub(crate) fn hour_done(&self, hour: u32) {
        self.hours_done.set(i64::from(hour) + 1);
        self.days_done.set(i64::from((hour + 1) / 24));
    }
}

/// Pre-interned flight-recorder span names for one pipeline thread
/// (driver, feed, or worker). Interning happens once at wiring time so
/// the hot paths record spans with atomics only.
pub(crate) struct ThreadTrace {
    pub(crate) buf: Arc<TraceBuf>,
    pub(crate) produce: NameId,
    pub(crate) export: NameId,
    pub(crate) drain: NameId,
    pub(crate) recv_idle: NameId,
    pub(crate) send_block: NameId,
    pub(crate) finish: NameId,
}

impl ThreadTrace {
    pub(crate) fn new(tracer: &Tracer, pid: u32, tid: u32, label: &str) -> Self {
        ThreadTrace {
            produce: tracer.name("produce"),
            export: tracer.name("export"),
            drain: tracer.name("drain"),
            recv_idle: tracer.name("recv_idle"),
            send_block: tracer.name("send_block"),
            finish: tracer.name("finish"),
            buf: tracer.thread(pid, tid, label),
        }
    }

    /// Records a complete span from `start_ns` until now.
    pub(crate) fn span_since(&self, name: NameId, start_ns: u64) {
        self.buf
            .complete(name, start_ns, self.buf.now_ns().saturating_sub(start_ns));
    }
}

/// Aggregate statistics of one vantage run (cache + transport).
#[derive(Debug, Clone, Copy, Default)]
pub struct VantageRunStats {
    /// Flow-cache statistics summed over all routers (post-flush).
    pub cache: CacheStats,
    /// Export datagrams dropped by the lossy transport.
    pub dropped_datagrams: u64,
    /// v9 data sets undecodable because their template was lost.
    pub undecodable_datagrams: u64,
    /// High-water mark of records resident in the collector at once.
    /// Under chunked emission (hourly drains to a [`FlowSink`]) this is
    /// one chunk; under batch collection it is the total record count.
    pub peak_resident_records: u64,
}

/// The vantage point: routers plus the anonymizing collector.
///
/// Either the whole fleet (via [`VantagePoint::new`]) or one shard of
/// it (via [`VantagePoint::shard`]): a shard owns a contiguous range of
/// the global router ids starting at `router_base`, while event routing
/// always hashes over the *fleet-wide* `total_routers` — so the events
/// a given router observes are identical whether or not the fleet is
/// sharded.
pub struct VantagePoint {
    routers: Vec<Router>,
    /// Global id of `routers[0]` (0 for an unsharded vantage point).
    router_base: usize,
    /// Fleet-wide router count event routing hashes over.
    total_routers: usize,
    collector: Collector,
    cryptopan: CryptoPan,
    plan_prefix_len: u8,
    format: ExportFormat,
    v9_decoder: V9Decoder,
    transport: Transport,
    metrics: Option<VantageMetrics>,
    /// Flight recorder (None = untraced, zero overhead). The drivers
    /// read this to wrap produce/export/drain in spans.
    pub(crate) trace: Option<Arc<Tracer>>,
}

/// The (lossy) export transport between routers and collector.
pub(crate) struct Transport {
    loss_rate: f64,
    rng: ChaCha8Rng,
    /// Datagrams dropped by fault injection.
    pub dropped_datagrams: u64,
    /// v9 data sets skipped because their template was lost.
    pub undecodable_datagrams: u64,
}

impl Transport {
    fn new(cfg: &VantageConfig) -> Self {
        use rand::SeedableRng as _;
        Transport {
            loss_rate: cfg.export_loss_rate,
            rng: ChaCha8Rng::seed_from_u64(cfg.sampling_seed ^ 0x105E),
            dropped_datagrams: 0,
            undecodable_datagrams: 0,
        }
    }

    fn delivers(&mut self) -> bool {
        use rand::Rng as _;
        if self.loss_rate <= 0.0 {
            return true;
        }
        if self.rng.gen::<f64>() < self.loss_rate {
            self.dropped_datagrams += 1;
            false
        } else {
            true
        }
    }
}

impl VantagePoint {
    /// Creates the vantage point. `server_prefixes` are exempt from
    /// anonymization; `plan_prefix_len` is the routing-prefix length of
    /// the address plan (used for routing and side-table keying).
    pub fn new(
        cfg: VantageConfig,
        server_prefixes: Vec<(Ipv4Addr, u8)>,
        plan_prefix_len: u8,
    ) -> Self {
        let routers: Vec<Router> = (0..cfg.routers).map(|id| Router::new(id, &cfg)).collect();
        let collector = Collector::new_anonymizing(&cfg.anon_key, server_prefixes);
        let cryptopan = CryptoPan::new(&cfg.anon_key);
        let transport = Transport::new(&cfg);
        VantagePoint {
            router_base: 0,
            total_routers: routers.len(),
            routers,
            collector,
            cryptopan,
            plan_prefix_len,
            format: cfg.format,
            v9_decoder: V9Decoder::new(),
            transport,
            metrics: None,
            trace: None,
        }
    }

    /// Splits the vantage fleet into `n` shards, each owning a
    /// contiguous range of the global router ids (sizes differing by at
    /// most one) with its own collector and — per `key_mode` — its own
    /// Crypto-PAn key. Routers keep their *global* ids, so every
    /// router's sampling RNG stream is identical to the unsharded
    /// fleet's; under [`ShardKeyMode::Common`] the union of all shards'
    /// records is therefore exactly the unsharded record set.
    pub fn shard(
        cfg: VantageConfig,
        server_prefixes: Vec<(Ipv4Addr, u8)>,
        plan_prefix_len: u8,
        n: usize,
        key_mode: ShardKeyMode,
    ) -> Vec<VantagePoint> {
        let total = usize::from(cfg.routers);
        assert!(
            (1..=total).contains(&n),
            "shard count {n} must be in 1..={total} (the router count)"
        );
        let keys = shard_keys(&cfg.anon_key, n, key_mode);
        let base_size = total / n;
        let remainder = total % n;
        let mut shards = Vec::with_capacity(n);
        let mut next_router = 0usize;
        for (i, key) in keys.into_iter().enumerate() {
            let size = base_size + usize::from(i < remainder);
            let shard_cfg = VantageConfig {
                anon_key: key,
                ..cfg
            };
            let routers: Vec<Router> = (0..size)
                .map(|k| Router::new((next_router + k) as u8, &shard_cfg))
                .collect();
            shards.push(VantagePoint {
                router_base: next_router,
                total_routers: total,
                routers,
                collector: Collector::new_anonymizing(&key, server_prefixes.clone()),
                cryptopan: CryptoPan::new(&key),
                plan_prefix_len,
                format: cfg.format,
                v9_decoder: V9Decoder::new(),
                transport: Transport::new(&shard_cfg),
                metrics: None,
                trace: None,
            });
            next_router += size;
        }
        shards
    }

    /// Global ids of the routers this vantage point owns.
    pub fn router_ids(&self) -> std::ops::Range<usize> {
        self.router_base..self.router_base + self.routers.len()
    }

    /// Attaches observability: per-router sampling counters, per-day
    /// flow-event counters (`days` pre-registers the day series so the
    /// snapshot schema is complete even for quiet days), and the
    /// collector's record/anonymization/sequence-loss counters.
    pub fn attach_metrics(&mut self, registry: &Arc<Registry>, days: u32) {
        for router in &mut self.routers {
            router.metrics = Some(RouterMetrics {
                sampled: registry
                    .counter(&format!("simnet.router.{:02}.sampled_packets", router.id)),
                unsampled: registry
                    .counter(&format!("simnet.router.{:02}.unsampled_packets", router.id)),
            });
        }
        self.collector.set_metrics(CollectorMetrics::new(registry));
        self.metrics = Some(VantageMetrics {
            registry: Arc::clone(registry),
            flow_events: registry.counter("simnet.traffic.flow_events"),
            flow_events_by_day: (0..days)
                .map(|d| registry.counter(&format!("simnet.traffic.flow_events.day{d:02}")))
                .collect(),
        });
    }

    /// Attaches the flight recorder. The run drivers wrap every
    /// produce/export/drain step in trace spans; tracing never touches
    /// an RNG stream, so the record output is identical with or without
    /// it (asserted by the determinism test suite).
    pub fn set_trace(&mut self, tracer: Arc<Tracer>) {
        self.trace = Some(tracer);
    }

    /// Points the collector's per-datagram ingest spans at `buf` (the
    /// trace track of whatever thread ends up driving this vantage
    /// point — the drivers call this once the thread layout is known).
    pub(crate) fn trace_collector_onto(&mut self, tracer: &Tracer, buf: Arc<TraceBuf>) {
        self.collector.set_trace(CollectorTrace::new(tracer, buf));
    }

    /// Fault-injection statistics: `(datagrams dropped in transport,
    /// v9 datagrams undecodable due to lost templates)`.
    pub fn transport_stats(&self) -> (u64, u64) {
        (
            self.transport.dropped_datagrams,
            self.transport.undecodable_datagrams,
        )
    }

    /// Feeds one wire datagram into the collector, decoding per the
    /// configured format. Passes the (possibly lossy) transport first.
    fn ingest_wire(
        collector: &mut Collector,
        v9_decoder: &mut V9Decoder,
        transport: &mut Transport,
        format: ExportFormat,
        wire: bytes::Bytes,
    ) {
        if !transport.delivers() {
            return;
        }
        match format {
            ExportFormat::V5 => {
                collector
                    .ingest(wire)
                    .expect("self-produced v5 datagram is valid");
            }
            ExportFormat::V9 => {
                // Engine id = v9 source id (set by the router).
                let source = u32::from_be_bytes([wire[16], wire[17], wire[18], wire[19]]) as u8;
                match v9_decoder.decode(wire) {
                    Ok(records) => collector.ingest_records(records, source),
                    Err(cwa_netflow::v9::V9Error::UnknownTemplate(_)) => {
                        // The template announcement was lost; data sets
                        // stay undecodable until the next re-announcement.
                        transport.undecodable_datagrams += 1;
                        collector.note_decode_error();
                    }
                    Err(e) => panic!("self-produced v9 datagram invalid: {e}"),
                }
            }
        }
    }

    /// Observes one flow event (routes it to the owning router). The
    /// router hash is over the fleet-wide router count; for a shard, the
    /// event must belong to one of its routers.
    pub fn observe(&mut self, ev: &FlowEvent) {
        if let Some(m) = &self.metrics {
            m.note_event(ev);
        }
        let r = router_for(ev, self.plan_prefix_len, self.total_routers);
        let local = r
            .checked_sub(self.router_base)
            .filter(|&l| l < self.routers.len())
            .expect("event dispatched to a router outside this shard");
        self.routers[local].observe(ev);
    }

    /// End-of-hour housekeeping across all routers (in id order, keeping
    /// the collector's record order deterministic).
    pub fn end_of_hour(&mut self, hour: u32) {
        for router in &mut self.routers {
            for wire in router.end_of_hour(hour) {
                Self::ingest_wire(
                    &mut self.collector,
                    &mut self.v9_decoder,
                    &mut self.transport,
                    self.format,
                    wire,
                );
            }
        }
    }

    /// Streams the records currently resident in the collector into
    /// `sink` and clears them. Calling this after every
    /// [`end_of_hour`](VantagePoint::end_of_hour) is the chunked
    /// emission mode: the collector never holds more than one export
    /// round's records.
    pub fn drain_records_into(&mut self, sink: &mut dyn FlowSink) {
        self.collector.drain_into(sink);
    }

    /// Sets the collector's records-per-[`FlowChunk`] drain batching
    /// (default `cwa_netflow::DEFAULT_CHUNK_CAPACITY`). Batching never
    /// changes the record stream, only how many records each
    /// `observe_chunk` call carries.
    ///
    /// [`FlowChunk`]: cwa_netflow::FlowChunk
    pub fn set_chunk_capacity(&mut self, capacity: usize) {
        self.collector.set_chunk_capacity(capacity);
    }

    /// Flushes all caches (end of measurement) and returns every
    /// collected, anonymized record.
    pub fn finish(self, final_hour: u32) -> Vec<FlowRecord> {
        self.finish_with_stats(final_hour).0
    }

    /// [`VantagePoint::finish`] that also reports the run's aggregate
    /// cache and transport statistics (captured *after* the final flush,
    /// so flush evictions are included).
    pub fn finish_with_stats(self, final_hour: u32) -> (Vec<FlowRecord>, VantageRunStats) {
        let mut records = Vec::new();
        let stats = self.finish_into(final_hour, &mut records);
        (records, stats)
    }

    /// Streaming form of [`finish_with_stats`]: flushes all caches,
    /// drains the remaining records into `sink` (without signalling
    /// `sink.finish()` — the caller owns the stream's lifecycle) and
    /// reports the run's aggregate statistics.
    ///
    /// [`finish_with_stats`]: VantagePoint::finish_with_stats
    pub fn finish_into(mut self, final_hour: u32, sink: &mut dyn FlowSink) -> VantageRunStats {
        for router in &mut self.routers {
            for wire in router.finish(final_hour) {
                Self::ingest_wire(
                    &mut self.collector,
                    &mut self.v9_decoder,
                    &mut self.transport,
                    self.format,
                    wire,
                );
            }
        }
        let stats = VantageRunStats {
            cache: self.cache_stats(),
            dropped_datagrams: self.transport.dropped_datagrams,
            undecodable_datagrams: self.transport.undecodable_datagrams,
            peak_resident_records: self.collector.peak_resident_records() as u64,
        };
        self.collector.drain_into(sink);
        stats
    }

    /// Decomposes into parts for the parallel driver.
    pub(crate) fn into_parts(
        self,
    ) -> (
        Vec<Router>,
        Collector,
        u8,
        ExportFormat,
        V9Decoder,
        Transport,
    ) {
        (
            self.routers,
            self.collector,
            self.plan_prefix_len,
            self.format,
            self.v9_decoder,
            self.transport,
        )
    }

    /// Builds the anonymized side tables from the operator's knowledge.
    pub fn side_tables(
        &self,
        plan: &AddressPlan,
        geodb: &GeoDb,
    ) -> (GeoDb, HashMap<u32, IspSideEntry>) {
        side_tables_with(&self.cryptopan, plan, geodb, None)
    }

    /// Side tables with the realistic router map: the ground-truth
    /// "router location" for a prefix is the *serving* router's
    /// district, which for rural prefixes may be the neighbouring
    /// district — the imprecision §3 of the paper warns about.
    pub fn side_tables_routed(
        &self,
        plan: &AddressPlan,
        geodb: &GeoDb,
        routers: &cwa_geo::RouterMap,
    ) -> (GeoDb, HashMap<u32, IspSideEntry>) {
        side_tables_with(&self.cryptopan, plan, geodb, Some(routers))
    }

    /// Aggregate cache statistics over all routers.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.routers {
            let s = r.stats();
            total.packets_seen += s.packets_seen;
            total.expired_inactive += s.expired_inactive;
            total.expired_active += s.expired_active;
            total.expired_emergency += s.expired_emergency;
            total.expired_flush += s.expired_flush;
        }
        total
    }
}

/// Builds the anonymized side tables (standalone form used by both the
/// serial and parallel drivers).
pub fn side_tables_with(
    cryptopan: &CryptoPan,
    plan: &AddressPlan,
    geodb: &GeoDb,
    routers: Option<&cwa_geo::RouterMap>,
) -> (GeoDb, HashMap<u32, IspSideEntry>) {
    let geodb_anon = geodb.rekeyed(|a| cryptopan.anonymize(a));
    let mut isp_table = HashMap::with_capacity(plan.allocations().len());
    for alloc in plan.allocations() {
        let anon_net = cwa_geo::geodb::mask(cryptopan.anonymize(alloc.network), alloc.len);
        let is_gt = plan.isp(alloc.isp).ground_truth_routers;
        let router_district = if is_gt {
            match routers {
                Some(map) => map
                    .router_of(u32::from(alloc.network))
                    .map(|r| r.district)
                    .or(Some(alloc.district)),
                None => Some(alloc.district),
            }
        } else {
            None
        };
        isp_table.insert(
            anon_net,
            IspSideEntry {
                isp: alloc.isp,
                router_district,
            },
        );
    }
    (geodb_anon, isp_table)
}

/// Messages the parallel driver sends to router workers.
enum WorkerMsg {
    Event(Box<FlowEvent>),
    EndOfHour(u32),
    Finish(u32),
}

/// Drives a traffic generator through the vantage point with one
/// crossbeam worker thread per router. Returns the anonymized records
/// and the traffic ground truth.
///
/// Determinism: every router consumes its events in generation order
/// with its own RNG stream, and the main thread ingests each hour's
/// exports in router-id order — so the output is **identical** to the
/// serial driver's.
pub fn run_parallel(
    model: crate::traffic::TrafficModel<'_>,
    vantage: VantagePoint,
    hours: u32,
) -> (
    Vec<FlowRecord>,
    crate::traffic::GroundTruth,
    VantageRunStats,
) {
    let mut records = Vec::new();
    let (truth, stats) = run_parallel_into(model, vantage, hours, &mut records);
    (records, truth, stats)
}

/// Streaming form of [`run_parallel`]: drains the collector into `sink`
/// after every export round, so no more than one round's records are
/// resident at once. Record order is identical to [`run_parallel`]
/// (per-round drains concatenate in ingestion order). Does not call
/// `sink.finish()` — the caller owns the stream's lifecycle.
pub fn run_parallel_into(
    mut model: crate::traffic::TrafficModel<'_>,
    vantage: VantagePoint,
    hours: u32,
    sink: &mut dyn FlowSink,
) -> (crate::traffic::GroundTruth, VantageRunStats) {
    let metrics = vantage.metrics.clone();
    let progress = metrics
        .as_ref()
        .map(|m| ProgressGauges::new(&m.registry, hours));
    let tracer = vantage.trace.clone();
    let mut vantage = vantage;
    let driver_tr = tracer.as_ref().map(|t| {
        t.set_process_name(0, "vantage");
        let tr = ThreadTrace::new(t, 0, 0, "driver");
        vantage.trace_collector_onto(t, Arc::clone(&tr.buf));
        tr
    });
    let (routers, mut collector, plan_prefix_len, format, mut v9_decoder, mut transport) =
        vantage.into_parts();
    let n_routers = routers.len();

    let mut worker_txs = Vec::with_capacity(n_routers);
    let (reply_tx, reply_rx) =
        std::sync::mpsc::channel::<(u8, Vec<bytes::Bytes>, bool, CacheStats)>();

    let result = crossbeam::thread::scope(|scope| {
        for mut router in routers {
            let (tx, rx) = crossbeam::channel::unbounded::<WorkerMsg>();
            worker_txs.push(tx);
            let reply = reply_tx.clone();
            // Worker-utilization handles: busy wall-time and event
            // count per router, recorded once when the worker finishes
            // (wall-clock never feeds back into the simulation).
            let worker_obs = metrics.as_ref().map(|m| {
                (
                    m.registry
                        .timer(&format!("simnet.worker.{:02}.busy", router.id)),
                    m.registry
                        .counter(&format!("simnet.worker.{:02}.events", router.id)),
                )
            });
            let worker_tr = tracer.as_ref().map(|t| {
                ThreadTrace::new(
                    t,
                    0,
                    1 + u32::from(router.id),
                    &format!("router{:02}", router.id),
                )
            });
            scope.spawn(move |_| {
                let mut busy = std::time::Duration::ZERO;
                let mut events = 0u64;
                // Observe busy-time since the last export, emitted as
                // one coalesced `produce` span per hour (per-event
                // spans would swamp the ring).
                let mut produce_ns = 0u64;
                let timed = worker_obs.is_some() || worker_tr.is_some();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WorkerMsg::Event(ev) => {
                            if timed {
                                let t = std::time::Instant::now();
                                router.observe(&ev);
                                let d = t.elapsed();
                                busy += d;
                                produce_ns += d.as_nanos() as u64;
                                events += 1;
                            } else {
                                router.observe(&ev);
                            }
                        }
                        WorkerMsg::EndOfHour(h) => {
                            if let Some(tr) = &worker_tr {
                                let end = tr.buf.now_ns();
                                tr.buf.complete(
                                    tr.produce,
                                    end.saturating_sub(produce_ns),
                                    produce_ns,
                                );
                                produce_ns = 0;
                            }
                            let export_start = worker_tr.as_ref().map(|tr| tr.buf.now_ns());
                            let packets = router.end_of_hour(h);
                            if let (Some(tr), Some(start)) = (&worker_tr, export_start) {
                                tr.span_since(tr.export, start);
                            }
                            reply
                                .send((router.id, packets, false, router.stats()))
                                .expect("main thread alive");
                        }
                        WorkerMsg::Finish(h) => {
                            let finish_start = worker_tr.as_ref().map(|tr| tr.buf.now_ns());
                            let packets = router.finish(h);
                            if let (Some(tr), Some(start)) = (&worker_tr, finish_start) {
                                tr.span_since(tr.finish, start);
                            }
                            reply
                                .send((router.id, packets, true, router.stats()))
                                .expect("main thread alive");
                            break;
                        }
                    }
                }
                if let Some((timer, counter)) = &worker_obs {
                    timer.record(busy);
                    counter.add(events);
                }
            });
        }
        drop(reply_tx);

        let collect_round = |collector: &mut Collector,
                             v9_decoder: &mut V9Decoder,
                             transport: &mut Transport|
         -> CacheStats {
            // Gather one reply per router, ingest in id order.
            let mut round: Vec<(u8, Vec<bytes::Bytes>, bool, CacheStats)> = (0..n_routers)
                .map(|_| reply_rx.recv().expect("worker alive"))
                .collect();
            round.sort_by_key(|(id, ..)| *id);
            let mut stats = CacheStats::default();
            for (_, datagrams, _, s) in round {
                for wire in datagrams {
                    VantagePoint::ingest_wire(collector, v9_decoder, transport, format, wire);
                }
                stats.packets_seen += s.packets_seen;
                stats.expired_inactive += s.expired_inactive;
                stats.expired_active += s.expired_active;
                stats.expired_emergency += s.expired_emergency;
                stats.expired_flush += s.expired_flush;
            }
            stats
        };

        for hour in 0..hours {
            let produce_start = driver_tr.as_ref().map(|tr| tr.buf.now_ns());
            model.generate_hour(hour, &mut |ev| {
                if let Some(m) = &metrics {
                    m.note_event(ev);
                }
                let r = router_for(ev, plan_prefix_len, n_routers);
                worker_txs[r]
                    .send(WorkerMsg::Event(Box::new(*ev)))
                    .expect("worker alive");
            });
            if let (Some(tr), Some(start)) = (&driver_tr, produce_start) {
                tr.span_since(tr.produce, start);
            }
            for tx in &worker_txs {
                tx.send(WorkerMsg::EndOfHour(hour)).expect("worker alive");
            }
            let drain_start = driver_tr.as_ref().map(|tr| tr.buf.now_ns());
            collect_round(&mut collector, &mut v9_decoder, &mut transport);
            collector.drain_into(sink);
            sink.checkpoint();
            if let (Some(tr), Some(start)) = (&driver_tr, drain_start) {
                tr.span_since(tr.drain, start);
            }
            if let Some(p) = &progress {
                p.hour_done(hour);
            }
        }
        for tx in &worker_txs {
            tx.send(WorkerMsg::Finish(hours.saturating_sub(1)))
                .expect("worker alive");
        }
        let finish_start = driver_tr.as_ref().map(|tr| tr.buf.now_ns());
        let stats = collect_round(&mut collector, &mut v9_decoder, &mut transport);
        collector.drain_into(sink);
        sink.checkpoint();
        if let (Some(tr), Some(start)) = (&driver_tr, finish_start) {
            tr.span_since(tr.finish, start);
        }
        stats
    })
    .expect("no worker panicked");

    let stats = VantageRunStats {
        cache: result,
        dropped_datagrams: transport.dropped_datagrams,
        undecodable_datagrams: transport.undecodable_datagrams,
        peak_resident_records: collector.peak_resident_records() as u64,
    };
    (model.into_truth(), stats)
}

/// Messages the sharded driver sends to shard workers.
enum ShardMsg {
    /// A batch of flow events owned by this shard's routers.
    Events(Vec<FlowEvent>),
    EndOfHour(u32),
    Finish(u32),
}

/// Events per [`ShardMsg::Events`] batch (amortizes channel traffic).
const SHARD_EVENT_BATCH: usize = 256;
/// Bounded channel capacity in batches: the generator can run at most
/// this many batches ahead of a shard worker before blocking
/// (backpressure keeping per-shard memory flat).
const SHARD_CHANNEL_CAP: usize = 64;

/// Drives a traffic generator through a sharded vantage fleet: one
/// crossbeam worker per shard runs that shard's routers, collector and
/// sink, fed event batches over a bounded channel. Each worker drains
/// its collector into its own sink every export hour and calls
/// `sink.finish()` after the final flush, then returns the sink and the
/// shard's run statistics (in shard order).
///
/// Determinism: the main thread generates events in the exact serial
/// order and routes each to its owning shard, where the owning *router*
/// — keyed by global id — consumes its subsequence with the same RNG
/// stream as in the unsharded fleet. Each shard's record stream is
/// therefore exactly the unsharded stream restricted to its routers
/// (re-keyed if the shard has its own Crypto-PAn key).
pub fn run_sharded_into<S: FlowSink + Send>(
    mut model: crate::traffic::TrafficModel<'_>,
    shards: Vec<(VantagePoint, S)>,
    hours: u32,
) -> (crate::traffic::GroundTruth, Vec<(S, VantageRunStats)>) {
    assert!(!shards.is_empty(), "at least one shard required");
    let n_shards = shards.len();
    let metrics = shards[0].0.metrics.clone();
    let tracer = shards[0].0.trace.clone();
    let plan_prefix_len = shards[0].0.plan_prefix_len;
    let total_routers = shards[0].0.total_routers;
    let mut owner_of_router = vec![usize::MAX; total_routers];
    for (i, (vp, _)) in shards.iter().enumerate() {
        for r in vp.router_ids() {
            owner_of_router[r] = i;
        }
    }
    assert!(
        owner_of_router.iter().all(|&o| o != usize::MAX),
        "shards must cover every router of the fleet"
    );
    // Channel-depth gauges (batches in flight per shard; pure
    // observation, main thread increments and the worker decrements).
    let depth_gauges: Vec<Option<Arc<cwa_obs::Gauge>>> = (0..n_shards)
        .map(|i| {
            metrics
                .as_ref()
                .map(|m| m.registry.gauge(&format!("sim.shard.{i:02}.channel_depth")))
        })
        .collect();
    // Stall accounting: per shard, nanoseconds the generator spent
    // blocked sending into the full bounded channel and nanoseconds the
    // worker spent idle waiting to receive.
    let send_block_counters: Vec<Option<Arc<Counter>>> = (0..n_shards)
        .map(|i| {
            metrics.as_ref().map(|m| {
                m.registry
                    .counter(&format!("sim.shard.{i:02}.send_block_ns"))
            })
        })
        .collect();
    let recv_idle_counters: Vec<Option<Arc<Counter>>> = (0..n_shards)
        .map(|i| {
            metrics.as_ref().map(|m| {
                m.registry
                    .counter(&format!("sim.shard.{i:02}.recv_idle_ns"))
            })
        })
        .collect();
    // Live progress: fleet-wide `sim.progress.*` advanced by the
    // generator, plus a per-shard hours-done gauge advanced by each
    // worker — a starving shard is visible as a lagging gauge.
    let progress = metrics
        .as_ref()
        .map(|m| ProgressGauges::new(&m.registry, hours));
    let shard_hours_gauges: Vec<Option<Arc<cwa_obs::Gauge>>> = (0..n_shards)
        .map(|i| {
            metrics
                .as_ref()
                .map(|m| m.registry.gauge(&format!("sim.shard.{i:02}.hours_done")))
        })
        .collect();
    // Trace layout: one Chrome-trace "process" per shard (pid i+1,
    // stable across runs), with the generator-side feed on tid 0 and
    // the shard worker on tid 1. Pid 0 stays the generator/study.
    let feed_traces: Vec<Option<ThreadTrace>> = (0..n_shards)
        .map(|i| {
            tracer.as_ref().map(|t| {
                t.set_process_name((i + 1) as u32, &format!("shard{i:02}"));
                ThreadTrace::new(t, (i + 1) as u32, 0, "feed")
            })
        })
        .collect();
    let generator_tr = tracer.as_ref().map(|t| {
        t.set_process_name(0, "generator");
        ThreadTrace::new(t, 0, 0, "generator")
    });

    /// Sends one message, accounting time blocked on a full channel as
    /// a `send_block` span and `sim.shard.NN.send_block_ns`. Untraced
    /// and unmetered feeds take the plain blocking path.
    fn send_accounted(
        tx: &crossbeam::channel::Sender<ShardMsg>,
        msg: ShardMsg,
        feed_tr: &Option<ThreadTrace>,
        counter: &Option<Arc<Counter>>,
    ) {
        if feed_tr.is_none() && counter.is_none() {
            tx.send(msg).expect("worker alive");
            return;
        }
        match tx.try_send(msg) {
            Ok(()) => {}
            Err(crossbeam::channel::TrySendError::Full(msg)) => {
                let start = std::time::Instant::now();
                let start_ns = feed_tr.as_ref().map(|tr| tr.buf.now_ns());
                tx.send(msg).expect("worker alive");
                let blocked = start.elapsed().as_nanos() as u64;
                if let (Some(tr), Some(ns)) = (feed_tr, start_ns) {
                    tr.buf.complete(tr.send_block, ns, blocked);
                }
                if let Some(c) = counter {
                    c.add(blocked);
                }
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                panic!("worker alive");
            }
        }
    }

    let results = crossbeam::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        for (i, (mut vp, mut sink)) in shards.into_iter().enumerate() {
            let (tx, rx) = crossbeam::channel::bounded::<ShardMsg>(SHARD_CHANNEL_CAP);
            txs.push(tx);
            // Flow events are counted once, by the main thread.
            vp.metrics = None;
            vp.trace = None;
            let depth = depth_gauges[i].clone();
            let idle_counter = recv_idle_counters[i].clone();
            let hours_gauge = shard_hours_gauges[i].clone();
            let worker_tracer = tracer.clone();
            let worker_tr = tracer
                .as_ref()
                .map(|t| ThreadTrace::new(t, (i + 1) as u32, 1, "worker"));
            if let (Some(t), Some(tr)) = (&worker_tracer, &worker_tr) {
                vp.trace_collector_onto(t, Arc::clone(&tr.buf));
            }
            handles.push(scope.spawn(move |_| {
                let mut vp = Some(vp);
                let mut stats = VantageRunStats::default();
                let timed_idle = worker_tr.is_some() || idle_counter.is_some();
                loop {
                    // Idle time: from wanting the next message to having
                    // it — a starved worker shows long recv_idle spans.
                    let idle_from = std::time::Instant::now();
                    let idle_from_ns = worker_tr.as_ref().map(|tr| tr.buf.now_ns());
                    let Ok(msg) = rx.recv() else { break };
                    if timed_idle {
                        let idle = idle_from.elapsed().as_nanos() as u64;
                        if let (Some(tr), Some(ns)) = (&worker_tr, idle_from_ns) {
                            tr.buf.complete(tr.recv_idle, ns, idle);
                        }
                        if let Some(c) = &idle_counter {
                            c.add(idle);
                        }
                    }
                    match msg {
                        ShardMsg::Events(batch) => {
                            if let Some(g) = &depth {
                                g.add(-1);
                            }
                            let produce_start = worker_tr.as_ref().map(|tr| tr.buf.now_ns());
                            let v = vp.as_mut().expect("events after finish");
                            for ev in &batch {
                                v.observe(ev);
                            }
                            if let (Some(tr), Some(start)) = (&worker_tr, produce_start) {
                                tr.span_since(tr.produce, start);
                            }
                        }
                        ShardMsg::EndOfHour(hour) => {
                            let v = vp.as_mut().expect("hours after finish");
                            let export_start = worker_tr.as_ref().map(|tr| tr.buf.now_ns());
                            v.end_of_hour(hour);
                            if let (Some(tr), Some(start)) = (&worker_tr, export_start) {
                                tr.span_since(tr.export, start);
                            }
                            let drain_start = worker_tr.as_ref().map(|tr| tr.buf.now_ns());
                            v.drain_records_into(&mut sink);
                            sink.checkpoint();
                            if let (Some(tr), Some(start)) = (&worker_tr, drain_start) {
                                tr.span_since(tr.drain, start);
                            }
                            if let Some(g) = &hours_gauge {
                                g.set(i64::from(hour) + 1);
                            }
                        }
                        ShardMsg::Finish(hour) => {
                            let v = vp.take().expect("exactly one finish");
                            let finish_start = worker_tr.as_ref().map(|tr| tr.buf.now_ns());
                            stats = v.finish_into(hour, &mut sink);
                            sink.checkpoint();
                            sink.finish();
                            if let (Some(tr), Some(start)) = (&worker_tr, finish_start) {
                                tr.span_since(tr.finish, start);
                            }
                            break;
                        }
                    }
                }
                (sink, stats)
            }));
        }

        let mut batches: Vec<Vec<FlowEvent>> = (0..n_shards)
            .map(|_| Vec::with_capacity(SHARD_EVENT_BATCH))
            .collect();
        for hour in 0..hours {
            let produce_start = generator_tr.as_ref().map(|tr| tr.buf.now_ns());
            model.generate_hour(hour, &mut |ev| {
                if let Some(m) = &metrics {
                    m.note_event(ev);
                }
                let shard = owner_of_router[router_for(ev, plan_prefix_len, total_routers)];
                let buf = &mut batches[shard];
                buf.push(*ev);
                if buf.len() == SHARD_EVENT_BATCH {
                    let full = std::mem::replace(buf, Vec::with_capacity(SHARD_EVENT_BATCH));
                    if let Some(g) = &depth_gauges[shard] {
                        g.add(1);
                    }
                    send_accounted(
                        &txs[shard],
                        ShardMsg::Events(full),
                        &feed_traces[shard],
                        &send_block_counters[shard],
                    );
                }
            });
            if let (Some(tr), Some(start)) = (&generator_tr, produce_start) {
                tr.span_since(tr.produce, start);
            }
            for (shard, tx) in txs.iter().enumerate() {
                let buf = &mut batches[shard];
                if !buf.is_empty() {
                    let full = std::mem::take(buf);
                    if let Some(g) = &depth_gauges[shard] {
                        g.add(1);
                    }
                    send_accounted(
                        tx,
                        ShardMsg::Events(full),
                        &feed_traces[shard],
                        &send_block_counters[shard],
                    );
                }
                send_accounted(
                    tx,
                    ShardMsg::EndOfHour(hour),
                    &feed_traces[shard],
                    &send_block_counters[shard],
                );
            }
            // Generator-side view: this hour's events are fully fed
            // (workers may still be draining their channels).
            if let Some(p) = &progress {
                p.hour_done(hour);
            }
        }
        for (shard, tx) in txs.iter().enumerate() {
            send_accounted(
                tx,
                ShardMsg::Finish(hours.saturating_sub(1)),
                &feed_traces[shard],
                &send_block_counters[shard],
            );
        }
        drop(txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect::<Vec<(S, VantageRunStats)>>()
    })
    .expect("no shard worker panicked");

    if let Some(m) = &metrics {
        for (i, (_, stats)) in results.iter().enumerate() {
            m.registry
                .gauge(&format!("sim.shard.{i:02}.peak_resident_records"))
                .set(stats.peak_resident_records as i64);
        }
    }
    (model.into_truth(), results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::FlowKind;
    use cwa_netflow::flow::{FlowKey, Protocol};

    fn event(client: Ipv4Addr, packets: u64, start_ms: u64) -> FlowEvent {
        FlowEvent {
            key: FlowKey {
                src_ip: Ipv4Addr::new(81, 200, 16, 1),
                dst_ip: client,
                src_port: 443,
                dst_port: 44_000,
                protocol: Protocol::Tcp,
            },
            packets,
            bytes: packets * 1000,
            start_ms,
            duration_ms: 2_000,
            kind: FlowKind::Api,
            district: DistrictId(0),
            isp: IspId(0),
            downstream: true,
        }
    }

    fn vp(sampling: u32) -> VantagePoint {
        VantagePoint::new(
            VantageConfig {
                sampling_interval: sampling,
                ..VantageConfig::default()
            },
            vec![
                (Ipv4Addr::new(81, 200, 16, 0), 22),
                (Ipv4Addr::new(185, 139, 96, 0), 22),
            ],
            22,
        )
    }

    #[test]
    fn unsampled_flow_is_recorded_and_anonymized() {
        let mut v = vp(1);
        let client = Ipv4Addr::new(84, 10, 0, 5);
        v.observe(&event(client, 10, 1000));
        v.end_of_hour(0);
        let records = v.finish(0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].packets, 10);
        assert_eq!(
            records[0].key.src_ip,
            Ipv4Addr::new(81, 200, 16, 1),
            "server clear"
        );
        assert_ne!(records[0].key.dst_ip, client, "client anonymized");
    }

    #[test]
    fn heavy_sampling_drops_most_small_flows() {
        let mut v = vp(1000);
        for i in 0..2_000u32 {
            let client = Ipv4Addr::from(u32::from(Ipv4Addr::new(84, 0, 0, 0)) + i);
            v.observe(&event(client, 15, 500));
        }
        v.end_of_hour(0);
        let records = v.finish(0);
        // E[seen] ≈ 2000 * (1 - (1-1/1000)^15) ≈ 30.
        assert!(
            (5..90).contains(&records.len()),
            "{} of 2000 flows observed",
            records.len()
        );
        let avg: f64 = records.iter().map(|r| r.packets as f64).sum::<f64>() / records.len() as f64;
        assert!(avg < 2.0, "avg packets {avg}");
    }

    #[test]
    fn same_prefix_same_router() {
        let e1 = event(Ipv4Addr::new(84, 10, 0, 5), 5, 0);
        let e2 = event(Ipv4Addr::new(84, 10, 0, 200), 5, 0);
        assert_eq!(router_for(&e1, 22, 4), router_for(&e2, 22, 4));
    }

    #[test]
    fn anonymization_consistent_across_hours() {
        let mut v = vp(1);
        let client = Ipv4Addr::new(84, 10, 0, 5);
        v.observe(&event(client, 5, 10_000));
        v.end_of_hour(0);
        v.observe(&event(client, 5, 3_700_000));
        v.end_of_hour(1);
        let records = v.finish(1);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key.dst_ip, records[1].key.dst_ip);
    }

    #[test]
    fn side_tables_cover_plan() {
        use cwa_geo::{AddressPlan, AddressPlanConfig, GeoDb, GeoDbConfig, Germany};
        let g = Germany::build();
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let geodb = GeoDb::build(&g, &plan, GeoDbConfig::default());
        let v = VantagePoint::new(
            VantageConfig::default(),
            vec![(Ipv4Addr::new(81, 200, 16, 0), 22)],
            18,
        );
        let (geodb_anon, isp_table) = v.side_tables(&plan, &geodb);
        assert_eq!(geodb_anon.len(), geodb.len());
        assert_eq!(isp_table.len(), plan.allocations().len());

        let gt_isp = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let cp = CryptoPan::new(&VantageConfig::default().anon_key);
        for alloc in plan.allocations().iter().take(500) {
            let anon = cwa_geo::geodb::mask(cp.anonymize(alloc.network), 18);
            let entry = isp_table[&anon];
            assert_eq!(entry.isp, alloc.isp);
            if alloc.isp == gt_isp {
                assert_eq!(entry.router_district, Some(alloc.district));
            } else {
                assert_eq!(entry.router_district, None);
            }
        }
    }

    #[test]
    fn long_flow_split_by_active_timeout() {
        let mut v = vp(1);
        let mut e = event(Ipv4Addr::new(84, 10, 0, 9), 600, 0);
        e.duration_ms = 600_000;
        v.observe(&e);
        v.end_of_hour(0);
        let records = v.finish(0);
        assert!(records.len() >= 4, "split into {} records", records.len());
        let total: u64 = records.iter().map(|r| r.packets).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn cache_stats_accumulate() {
        let mut v = vp(1);
        for i in 0..50u32 {
            v.observe(&event(Ipv4Addr::from(0x54000000 + i), 5, 100));
        }
        v.end_of_hour(0);
        let stats = v.cache_stats();
        assert_eq!(stats.packets_seen, 250);
    }

    #[test]
    fn router_rngs_differ() {
        let cfg = VantageConfig::default();
        let mut r0 = Router::new(0, &cfg);
        let mut r1 = Router::new(1, &cfg);
        // Same event stream, different sampling outcomes (eventually).
        let mut diverged = false;
        for i in 0..500u32 {
            let ev = event(Ipv4Addr::from(0x54000000 + i), 15, 100);
            r0.observe(&ev);
            r1.observe(&ev);
            if r0.stats().packets_seen != r1.stats().packets_seen {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "independent RNG streams per router");
    }
}
