//! The DNS ecosystem: open resolvers, query volumes, and an
//! Umbrella-style top-list rank model.
//!
//! Two observations in §2 of the paper rest on DNS:
//!
//! 1. The authors verified the CDN prefixes "*by resolving the API and
//!    web site DNS names … against 10k open DNS resolvers from
//!    public-dns.info*" — reproduced by [`verify_prefixes`].
//! 2. "*the CWA API DNS name appeared in the Umbrella Top 1M domains on
//!    June 24, 27, July 8, 10–11, while the website never appeared —
//!    implying CWA API calls to be more popular than website visits*."
//!    The Cisco Umbrella list ranks domains by OpenDNS query popularity.
//!    [`TopListModel`] maps a domain's resolver-visible query volume to
//!    a rank via an inverse-Zipf law with day-to-day jitter — which
//!    naturally produces exactly the observed flickering around the 1 M
//!    threshold once the API's popularity approaches it.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use cwa_epidemic::{ActivityModel, AdoptionCurve};

use crate::cdn::CdnConfig;

/// Umbrella-style rank model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopListModel {
    /// Zipf exponent of the domain-popularity distribution.
    pub zipf_exponent: f64,
    /// Daily resolver-visible queries of the rank-1 domain.
    pub rank1_queries_per_day: f64,
    /// Log-scale day-to-day jitter of measured volumes (σ).
    pub jitter_sigma: f64,
    /// Fraction of German DNS activity visible to the list's resolvers
    /// (OpenDNS has a small market share in Germany).
    pub resolver_visibility: f64,
    /// Fraction of API requests causing an upstream DNS query
    /// (TTL-driven cache miss rate at the resolver).
    pub api_cache_miss: f64,
    /// Cache-miss fraction for website lookups.
    pub web_cache_miss: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
}

impl Default for TopListModel {
    fn default() -> Self {
        TopListModel {
            zipf_exponent: 0.5,
            rank1_queries_per_day: 4.3e6,
            jitter_sigma: 0.05,
            resolver_visibility: 1.30e-3,
            api_cache_miss: 0.30,
            web_cache_miss: 0.50,
            seed: 0xD45,
        }
    }
}

impl TopListModel {
    /// Rank implied by a daily query volume: inverting the Zipf law
    /// `q(r) = q₁ · r^(−s)` gives `r(q) = (q₁ / q)^(1/s)`.
    pub fn rank_of_volume(&self, queries_per_day: f64) -> u64 {
        if queries_per_day <= 0.0 {
            return u64::MAX;
        }
        let r = (self.rank1_queries_per_day / queries_per_day).powf(1.0 / self.zipf_exponent);
        r.clamp(1.0, 1e15) as u64
    }

    /// The query volume needed to hit a given rank.
    pub fn volume_of_rank(&self, rank: u64) -> f64 {
        self.rank1_queries_per_day * (rank.max(1) as f64).powf(-self.zipf_exponent)
    }
}

/// Daily rank observations for both CWA domains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DnsStudy {
    /// Per-day rank of the API name.
    pub api_rank: Vec<u64>,
    /// Per-day rank of the website name.
    pub website_rank: Vec<u64>,
    /// Days (indices) where the API name made the top 1 M.
    pub api_top1m_days: Vec<u32>,
    /// Days where the website made the top 1 M.
    pub website_top1m_days: Vec<u32>,
}

/// Runs the DNS popularity study over `days` days.
///
/// API query volume follows the installed base times per-user request
/// rate; website volume follows the launch/news interest curve.
pub fn run_dns_study(
    model: &TopListModel,
    adoption: &AdoptionCurve,
    activity: &ActivityModel,
    national_media: &[f64],
    days: u32,
) -> DnsStudy {
    let mut rng = ChaCha8Rng::seed_from_u64(model.seed);
    let mut normals = crate::stats::NormalCache::new();
    let mut api_rank = Vec::with_capacity(days as usize);
    let mut website_rank = Vec::with_capacity(days as usize);

    for day in 0..days {
        let end_hour = day * 24 + 23;
        let installed = adoption.downloads_at(end_hour);
        let media = national_media
            .get(end_hour as usize)
            .copied()
            .unwrap_or(1.0);

        let api_queries = installed
            * activity.api_requests_per_user_day_media(media)
            * model.api_cache_miss
            * model.resolver_visibility;
        let web_visits_day: f64 = (0..24)
            .map(|h| activity.website_visits_per_hour(day * 24 + h, media))
            .sum();
        let web_queries = web_visits_day * model.web_cache_miss * model.resolver_visibility;

        // One Box–Muller pair covers both jitters.
        let jitter_api = (model.jitter_sigma * normals.standard_normal(&mut rng)).exp();
        let jitter_web = (model.jitter_sigma * normals.standard_normal(&mut rng)).exp();

        api_rank.push(model.rank_of_volume(api_queries * jitter_api));
        website_rank.push(model.rank_of_volume(web_queries * jitter_web));
    }

    let api_top1m_days = api_rank
        .iter()
        .enumerate()
        .filter(|(_, &r)| r <= 1_000_000)
        .map(|(d, _)| d as u32)
        .collect();
    let website_top1m_days = website_rank
        .iter()
        .enumerate()
        .filter(|(_, &r)| r <= 1_000_000)
        .map(|(d, _)| d as u32)
        .collect();

    DnsStudy {
        api_rank,
        website_rank,
        api_top1m_days,
        website_top1m_days,
    }
}

/// The §2 verification step: resolve both CWA DNS names against `n`
/// open resolvers and collect the set of service prefixes the answers
/// fall into. (Simulated resolvers all serve the true CDN records,
/// spread across servers; a small fraction time out.)
pub fn verify_prefixes<R: Rng>(
    rng: &mut R,
    cdn: &CdnConfig,
    n_resolvers: u32,
) -> Vec<(std::net::Ipv4Addr, u8)> {
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..n_resolvers {
        if rng.gen::<f64>() < 0.03 {
            continue; // dead resolver
        }
        let answer = cdn.server_for(rng.gen::<u64>());
        for &(p, l) in &cdn.service_prefixes {
            if cwa_netflow::flow::in_prefix(answer, p, l) {
                seen.insert((p, l));
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_epidemic::{AdoptionConfig, AdoptionModel, Scenario, Timeline};
    use cwa_geo::{AddressPlan, AddressPlanConfig, Germany};

    fn study(days: u32) -> DnsStudy {
        let g = Germany::build();
        let plan = AddressPlan::build(&g, AddressPlanConfig::default());
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let scenario = Scenario::paper_default(&g, gt);
        let adoption =
            AdoptionModel::new(AdoptionConfig::default()).run(&g, &scenario, Timeline { days });
        let media: Vec<f64> = (0..days * 24)
            .map(|h| scenario.national_media_factor(h))
            .collect();
        run_dns_study(
            &TopListModel::default(),
            &adoption,
            &ActivityModel::default(),
            &media,
            days,
        )
    }

    #[test]
    fn rank_volume_inversion() {
        let m = TopListModel::default();
        for rank in [1u64, 100, 10_000, 1_000_000] {
            let v = m.volume_of_rank(rank);
            let r = m.rank_of_volume(v);
            let rel = (r as f64 - rank as f64).abs() / rank as f64;
            assert!(rel < 0.01, "rank {rank} -> volume {v} -> rank {r}");
        }
        assert_eq!(m.rank_of_volume(0.0), u64::MAX);
    }

    /// Paper anchor: API in the Umbrella top 1M on June 24 (day 9 of the
    /// study) — i.e., late in the window, not at release.
    #[test]
    fn api_enters_top1m_late_in_window() {
        let s = study(11);
        assert!(
            !s.api_top1m_days.is_empty(),
            "API should enter the top 1M within the window: ranks {:?}",
            s.api_rank
        );
        let first = s.api_top1m_days[0];
        assert!(
            (6..=10).contains(&first),
            "first appearance day {first}, paper: day 9 (Jun 24); ranks {:?}",
            s.api_rank
        );
        // And never at/just after release, when the installed base is
        // still small.
        assert!(!s.api_top1m_days.contains(&1));
        assert!(!s.api_top1m_days.contains(&2));
    }

    /// Paper anchor: "the website never appeared".
    #[test]
    fn website_never_in_top1m() {
        let s = study(11);
        assert!(
            s.website_top1m_days.is_empty(),
            "website ranks {:?}",
            s.website_rank
        );
    }

    #[test]
    fn api_more_popular_than_website_once_adopted() {
        let s = study(11);
        for day in 3..11usize {
            assert!(
                s.api_rank[day] < s.website_rank[day],
                "day {day}: api {} vs web {}",
                s.api_rank[day],
                s.website_rank[day]
            );
        }
    }

    #[test]
    fn ranks_improve_with_adoption() {
        let s = study(11);
        // Median rank of last 3 days better (smaller) than days 2–4.
        let early = s.api_rank[2].min(s.api_rank[3]).min(s.api_rank[4]);
        let late = s.api_rank[8].min(s.api_rank[9]).min(s.api_rank[10]);
        assert!(late < early, "late {late} < early {early}");
    }

    #[test]
    fn verification_finds_both_prefixes() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let cdn = CdnConfig::default();
        let prefixes = verify_prefixes(&mut rng, &cdn, 10_000);
        assert_eq!(prefixes.len(), 2);
        for p in cdn.service_prefixes {
            assert!(prefixes.contains(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = study(8);
        let b = study(8);
        assert_eq!(a.api_rank, b.api_rank);
    }
}
