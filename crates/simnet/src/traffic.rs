//! The prefix-cohort traffic generator.
//!
//! Sixteen million phones are not simulated one by one; instead every
//! routing prefix of the address plan carries a *cohort* — its
//! district's share of installed app users and website visitors. Each
//! simulated hour, each cohort emits
//!
//! * **API flows**: daily diagnosis-key downloads and status fetches
//!   (rate = installed users × per-user hourly rate from
//!   [`cwa_epidemic::ActivityModel`], including the
//!   background-restriction bug),
//! * **website flows**: launch/news-interest driven visits, and
//! * **background flows**: unrelated traffic that the analysis must
//!   filter out,
//!
//! each with log-normal packet/byte sizes, an upstream (client→server)
//! counterpart, and client addresses drawn according to the owning
//! ISP's static/dynamic assignment behaviour.
//!
//! All figure-level outputs downstream are normalized, so a global
//! `scale` factor shrinks the run without changing any reproduced shape
//! (claim C1, the absolute flow count, is reported scale-adjusted).

use std::net::Ipv4Addr;

use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use cwa_epidemic::{ActivityModel, AdoptionCurve, Scenario};
use cwa_geo::{AccessKind, AddressPlan, DistrictId, Germany, IspId};
use cwa_netflow::flow::{FlowKey, Protocol};

use crate::cdn::CdnConfig;
use crate::stats::{flow_size_with, poisson, NormalCache};
use cwa_samplers::map_bits_u32;

/// What kind of traffic a flow is (ground-truth label; the measurement
/// pipeline never sees this — exactly the §2 limitation that app and
/// website traffic "cannot be differentiated").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// CWA app API call (key download / status).
    Api,
    /// Website visit.
    Website,
    /// Unrelated traffic.
    Background,
}

/// One generated flow (both directions are emitted as separate events,
/// as unidirectional NetFlow would see them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEvent {
    /// 5-tuple.
    pub key: FlowKey,
    /// True packet count (pre-sampling).
    pub packets: u64,
    /// True byte count (pre-sampling).
    pub bytes: u64,
    /// Start time, simulation ms.
    pub start_ms: u64,
    /// Duration, ms.
    pub duration_ms: u64,
    /// Ground-truth label.
    pub kind: FlowKind,
    /// True originating district (ground truth).
    pub district: DistrictId,
    /// Serving ISP (ground truth).
    pub isp: IspId,
    /// True if this is the CDN→client direction (the direction the
    /// paper's analysis keeps).
    pub downstream: bool,
}

/// Traffic-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Global volume scale (1.0 = full Germany).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Median packets of a downstream API flow (TLS handshake + key
    /// export payload).
    pub api_median_packets: f64,
    /// Log-normal shape of API flow sizes.
    pub api_sigma: f64,
    /// Median packets of a downstream website flow.
    pub web_median_packets: f64,
    /// Log-normal shape of website flow sizes.
    pub web_sigma: f64,
    /// Mean bytes per downstream packet.
    pub bytes_per_packet: f64,
    /// API retry multiplier (failed background fetches retry).
    pub retry_factor: f64,
    /// Background flows per CWA flow (filter fodder).
    pub background_ratio: f64,
    /// Fraction of a prefix's subscribers that are *active* app/web
    /// users on a given day. Static-lease ISPs keep these households at
    /// fixed addresses; daily-reconnect DSL moves the active set across
    /// the pool — the address-stability difference §3 of the paper
    /// alludes to ("customers of certain ISPs keep the same IP address
    /// over time").
    pub active_subscriber_fraction: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            scale: 1.0,
            seed: 0xC0A0_2020,
            api_median_packets: 16.0,
            api_sigma: 0.8,
            web_median_packets: 24.0,
            web_sigma: 1.0,
            bytes_per_packet: 1000.0,
            retry_factor: 1.15,
            background_ratio: 0.6,
            active_subscriber_fraction: 0.45,
        }
    }
}

/// Calibration ground truth accumulated during generation. The analysis
/// pipeline must never read this; integration tests compare the
/// pipeline's *measured* results against it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// True generated CWA flows (both kinds, downstream only) per hour.
    pub cwa_flows_by_hour: Vec<u64>,
    /// True generated CWA downstream flows per `[day][district]`.
    pub cwa_flows_by_day_district: Vec<Vec<u64>>,
    /// Total downstream API flows.
    pub api_flows: u64,
    /// Total downstream website flows.
    pub web_flows: u64,
    /// Total background flows (all directions).
    pub background_flows: u64,
    /// Total generated flow events (all kinds, both directions).
    pub total_events: u64,
}

impl GroundTruth {
    fn new(hours: u32, days: u32, districts: usize) -> Self {
        GroundTruth {
            cwa_flows_by_hour: vec![0; hours as usize],
            cwa_flows_by_day_district: vec![vec![0; districts]; days as usize],
            api_flows: 0,
            web_flows: 0,
            background_flows: 0,
            total_events: 0,
        }
    }
}

/// The generator.
pub struct TrafficModel<'a> {
    plan: &'a AddressPlan,
    scenario: &'a Scenario,
    adoption: &'a AdoptionCurve,
    activity: ActivityModel,
    cdn: CdnConfig,
    cfg: TrafficConfig,
    /// Subscribers per district (from the plan), cached.
    district_subscribers: Vec<f64>,
    /// Extra downstream packets per API flow per day, from the growing
    /// key-export payload (empty ⇒ no adjustment).
    export_extra_packets: Vec<f64>,
    rng: ChaCha8Rng,
    /// Banked Box–Muller sine variates for flow-size draws.
    normals: NormalCache,
    truth: GroundTruth,
    hours: u32,
}

impl<'a> TrafficModel<'a> {
    /// Creates a generator for `hours` hours of traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        germany: &'a Germany,
        plan: &'a AddressPlan,
        scenario: &'a Scenario,
        adoption: &'a AdoptionCurve,
        activity: ActivityModel,
        cdn: CdnConfig,
        cfg: TrafficConfig,
        hours: u32,
    ) -> Self {
        use rand::SeedableRng;
        let mut district_subscribers = vec![0.0f64; germany.len()];
        for alloc in plan.allocations() {
            district_subscribers[usize::from(alloc.district.0)] += f64::from(alloc.capacity);
        }
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let days = hours.div_ceil(24);
        let truth = GroundTruth::new(hours, days, germany.len());
        let _ = germany; // reserved: future district-level overrides
        TrafficModel {
            plan,
            scenario,
            adoption,
            activity,
            cdn,
            cfg,
            district_subscribers,
            export_extra_packets: Vec::new(),
            rng,
            normals: NormalCache::new(),
            truth,
            hours,
        }
    }

    /// Couples API flow sizes to the day's diagnosis-key export payload:
    /// `sizes[day]` is the export file size in bytes. The extra payload
    /// rides on the same downstream flow as additional full-size packets
    /// — the honest reason Fig. 2's *bytes* series grows relative to the
    /// *flows* series once keys start appearing (June 23).
    pub fn with_export_sizes(mut self, sizes_bytes: &[f64]) -> Self {
        self.export_extra_packets = sizes_bytes
            .iter()
            .map(|b| (b / self.cfg.bytes_per_packet).min(40.0))
            .collect();
        self
    }

    /// Generates one hour of traffic, passing every flow event to
    /// `sink`. Call with `hour` strictly increasing from 0.
    pub fn generate_hour<F: FnMut(&FlowEvent)>(&mut self, hour: u32, sink: &mut F) {
        debug_assert!(hour < self.hours);
        let day = hour / 24;
        let hod = hour % 24;
        let hour_start_ms = u64::from(hour) * 3_600_000;

        let national_media = self.scenario.national_media_factor(hour);
        let local_extras = self.scenario.local_media_extras(hour);
        let national_web_base = 1.0; // media applied per-district below

        let _ = national_web_base;

        for ai in 0..self.plan.allocations().len() {
            let alloc = self.plan.allocations()[ai];
            let d_idx = usize::from(alloc.district.0);
            let isp = self.plan.isp(alloc.isp);
            let subs = self.district_subscribers[d_idx].max(1.0);
            let cohort_share = f64::from(alloc.capacity) / subs;

            // Media factor seen by this cohort.
            let mut media = national_media;
            for &(ld, lisp, extra) in &local_extras {
                if ld == alloc.district && (lisp.is_none() || lisp == Some(alloc.isp)) {
                    media += extra;
                }
            }

            // App users behind this prefix.
            let installed_district = self.adoption.installed_in(alloc.district, hour);
            let users = installed_district * cohort_share;
            let lam_api = users
                * self.activity.api_requests_per_user_hour(hod, media)
                * self.cfg.retry_factor
                * self.cfg.scale;

            // Website visitors behind this prefix: national visit volume
            // allocated by adoption share, modulated by the *local*
            // media factor relative to the national one.
            let web_national = self.activity.website_visits_per_hour(hour, national_media);
            let local_boost = media / national_media;
            let lam_web = web_national
                * self.adoption.district_share[d_idx]
                * cohort_share
                * local_boost
                * self.cfg.scale;

            let lam_bg = (lam_api + lam_web) * self.cfg.background_ratio;

            let n_api = poisson(&mut self.rng, lam_api);
            let n_web = poisson(&mut self.rng, lam_web);
            let n_bg = poisson(&mut self.rng, lam_bg);

            for (kind, count) in [
                (FlowKind::Api, n_api),
                (FlowKind::Website, n_web),
                (FlowKind::Background, n_bg),
            ] {
                for _ in 0..count {
                    let ev = self.make_flow(kind, &alloc, isp.access, day, hour_start_ms);
                    self.account_truth(&ev, hour, day);
                    sink(&ev);
                    // Upstream counterpart (request direction).
                    let up = upstream_of(&ev, &mut self.rng);
                    self.truth.total_events += 1;
                    if up.kind == FlowKind::Background {
                        self.truth.background_flows += 1;
                    }
                    sink(&up);
                }
            }
        }
    }

    /// Runs all hours through `sink`, then returns the ground truth.
    pub fn run<F: FnMut(&FlowEvent)>(mut self, sink: &mut F) -> GroundTruth {
        for hour in 0..self.hours {
            self.generate_hour(hour, sink);
        }
        self.truth
    }

    /// Consumes the model, returning accumulated ground truth (for
    /// callers driving `generate_hour` manually).
    pub fn into_truth(self) -> GroundTruth {
        self.truth
    }

    fn make_flow(
        &mut self,
        kind: FlowKind,
        alloc: &cwa_geo::PrefixAllocation,
        access: AccessKind,
        day: u32,
        hour_start_ms: u64,
    ) -> FlowEvent {
        let rng = &mut self.rng;
        let prefix_size = 1u32 << (32 - u32::from(alloc.len));

        // Two independent small field draws ride one split u64: the
        // active-pool slot (high 32 bits) and the client port (low 32).
        let fields = rng.next_u64();

        // Client address: the day's traffic comes from the *active*
        // subscriber pool. Static-lease ISPs keep those households at
        // fixed (low-slot) addresses; daily-reconnect DSL re-assigns
        // them across the prefix every day, so the set of hot /24s
        // rotates.
        let pool = ((f64::from(alloc.capacity) * self.cfg.active_subscriber_fraction) as u32)
            .clamp(1, alloc.capacity.max(1));
        let slot = map_bits_u32((fields >> 32) as u32, pool);
        let host = match access {
            AccessKind::StaticLease => slot % prefix_size,
            AccessKind::Dynamic24h => (slot + day * 2917) % prefix_size,
        };
        let client = Ipv4Addr::from(u32::from(alloc.network) + host);

        // Either branch consumes exactly one u64.
        let server_bits = rng.next_u64();
        let server = match kind {
            FlowKind::Background => {
                // A popular non-CWA service (same port, different prefix).
                Ipv4Addr::from(
                    u32::from(Ipv4Addr::new(203, 0, 113, 0)) + map_bits_u32(server_bits as u32, 16),
                )
            }
            _ => self.cdn.server_for_day(server_bits, day),
        };

        let (median, sigma) = match kind {
            FlowKind::Api => {
                let extra = self
                    .export_extra_packets
                    .get(day as usize)
                    .copied()
                    .unwrap_or(0.0);
                (self.cfg.api_median_packets + extra, self.cfg.api_sigma)
            }
            FlowKind::Website => (self.cfg.web_median_packets, self.cfg.web_sigma),
            FlowKind::Background => (20.0, 1.2),
        };
        let (packets, bytes) = flow_size_with(
            &mut self.normals,
            rng,
            median,
            sigma,
            self.cfg.bytes_per_packet,
        );

        // Start offset within the hour (high 32 bits) and duration
        // (low 32) share one more split u64.
        let timing = rng.next_u64();
        let start_ms = hour_start_ms + u64::from(map_bits_u32((timing >> 32) as u32, 3_600_000));
        let duration_ms = match kind {
            FlowKind::Api => 400 + u64::from(map_bits_u32(timing as u32, 5_600)),
            FlowKind::Website => 2_000 + u64::from(map_bits_u32(timing as u32, 43_000)),
            FlowKind::Background => 500 + u64::from(map_bits_u32(timing as u32, 59_500)),
        };

        FlowEvent {
            key: FlowKey {
                src_ip: server,
                dst_ip: client,
                src_port: 443,
                dst_port: 1024 + map_bits_u32(fields as u32, 63_977) as u16,
                protocol: Protocol::Tcp,
            },
            packets,
            bytes,
            start_ms,
            duration_ms,
            kind,
            district: alloc.district,
            isp: alloc.isp,
            downstream: true,
        }
    }

    fn account_truth(&mut self, ev: &FlowEvent, hour: u32, day: u32) {
        self.truth.total_events += 1;
        match ev.kind {
            FlowKind::Api => {
                self.truth.api_flows += 1;
                self.truth.cwa_flows_by_hour[hour as usize] += 1;
                self.truth.cwa_flows_by_day_district[day as usize][usize::from(ev.district.0)] += 1;
            }
            FlowKind::Website => {
                self.truth.web_flows += 1;
                self.truth.cwa_flows_by_hour[hour as usize] += 1;
                self.truth.cwa_flows_by_day_district[day as usize][usize::from(ev.district.0)] += 1;
            }
            FlowKind::Background => {
                self.truth.background_flows += 1;
            }
        }
    }
}

/// Builds the upstream (client→server) counterpart of a downstream flow.
fn upstream_of<R: Rng>(ev: &FlowEvent, rng: &mut R) -> FlowEvent {
    let packets = (ev.packets / 2).max(2);
    // Per-packet byte jitter (high 32 bits) and start backoff (low 32)
    // share one split u64.
    let bits = rng.next_u64();
    let bytes = packets * (80 + u64::from(map_bits_u32((bits >> 32) as u32, 60)));
    FlowEvent {
        key: ev.key.reversed(),
        packets,
        bytes,
        start_ms: ev
            .start_ms
            .saturating_sub(u64::from(map_bits_u32(bits as u32, 50))),
        duration_ms: ev.duration_ms,
        kind: ev.kind,
        district: ev.district,
        isp: ev.isp,
        downstream: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwa_epidemic::{AdoptionConfig, AdoptionModel, Timeline};
    use cwa_geo::AddressPlanConfig;

    fn small_setup() -> (Germany, AddressPlan, Scenario, AdoptionCurve) {
        let g = Germany::build();
        let plan = AddressPlan::build(
            &g,
            AddressPlanConfig {
                persons_per_subscription: 2.0,
                prefix_capacity: 16_384,
                prefix_len: 18,
            },
        );
        let gt = plan
            .isps
            .iter()
            .find(|i| i.ground_truth_routers)
            .unwrap()
            .id;
        let scenario = Scenario::paper_default(&g, gt);
        let adoption = AdoptionModel::new(AdoptionConfig::default()).run(
            &g,
            &scenario,
            Timeline::measurement(),
        );
        (g, plan, scenario, adoption)
    }

    fn run_scaled(scale: f64, hours: u32) -> (Vec<FlowEvent>, GroundTruth) {
        let (g, plan, scenario, adoption) = small_setup();
        let cfg = TrafficConfig {
            scale,
            seed: 7,
            ..TrafficConfig::default()
        };
        let model = TrafficModel::new(
            &g,
            &plan,
            &scenario,
            &adoption,
            ActivityModel::default(),
            CdnConfig::default(),
            cfg,
            hours,
        );
        let mut events = Vec::new();
        let truth = model.run(&mut |ev| events.push(*ev));
        (events, truth)
    }

    #[test]
    fn flows_appear_after_release() {
        let (_, truth) = run_scaled(0.0005, 72);
        let day0: u64 = truth.cwa_flows_by_hour[..24].iter().sum();
        let day1: u64 = truth.cwa_flows_by_hour[24..48].iter().sum();
        assert!(day1 > day0 * 3, "release jump: day0 {day0}, day1 {day1}");
        assert!(day0 > 0, "pre-release website traffic exists");
    }

    #[test]
    fn event_stream_matches_truth_counts() {
        let (events, truth) = run_scaled(0.0005, 48);
        let down_cwa = events
            .iter()
            .filter(|e| e.downstream && e.kind != FlowKind::Background)
            .count() as u64;
        assert_eq!(down_cwa, truth.api_flows + truth.web_flows);
        assert_eq!(events.len() as u64, truth.total_events);
    }

    #[test]
    fn upstream_mirrors_downstream() {
        let (events, _) = run_scaled(0.0005, 30);
        let down = events.iter().filter(|e| e.downstream).count();
        let up = events.iter().filter(|e| !e.downstream).count();
        assert_eq!(down, up);
        // Upstream flows reverse the 5-tuple and carry fewer bytes.
        let d = events.iter().find(|e| e.downstream).unwrap();
        let u = events
            .iter()
            .find(|e| !e.downstream && e.key == d.key.reversed());
        if let Some(u) = u {
            assert!(u.bytes < d.bytes);
        }
    }

    #[test]
    fn downstream_cwa_flows_come_from_cdn() {
        let (events, _) = run_scaled(0.0005, 30);
        let cdn = CdnConfig::default();
        for e in events
            .iter()
            .filter(|e| e.downstream && e.kind != FlowKind::Background)
        {
            assert!(cdn.is_service_addr(e.key.src_ip), "src {}", e.key.src_ip);
            assert_eq!(e.key.src_port, 443);
        }
    }

    #[test]
    fn background_flows_avoid_cdn_prefixes() {
        let (events, _) = run_scaled(0.0005, 30);
        let cdn = CdnConfig::default();
        for e in events
            .iter()
            .filter(|e| e.kind == FlowKind::Background && e.downstream)
        {
            assert!(!cdn.is_service_addr(e.key.src_ip));
        }
    }

    #[test]
    fn clients_live_in_their_allocation() {
        let (g, plan, scenario, adoption) = small_setup();
        let cfg = TrafficConfig {
            scale: 0.0005,
            seed: 9,
            ..TrafficConfig::default()
        };
        let model = TrafficModel::new(
            &g,
            &plan,
            &scenario,
            &adoption,
            ActivityModel::default(),
            CdnConfig::default(),
            cfg,
            30,
        );
        let mut ok = 0u64;
        let mut total = 0u64;
        let truth = model.run(&mut |ev| {
            if ev.downstream {
                total += 1;
                if let Some(a) = plan.lookup(ev.key.dst_ip) {
                    if a.district == ev.district && a.isp == ev.isp {
                        ok += 1;
                    }
                }
            }
        });
        assert!(total > 100, "enough samples: {total}");
        assert_eq!(
            ok, total,
            "every client address maps back to its allocation"
        );
        let _ = truth;
    }

    #[test]
    fn scale_scales_volume_linearly() {
        let (_, t1) = run_scaled(0.0005, 48);
        let (_, t2) = run_scaled(0.001, 48);
        let r = t2.api_flows as f64 / t1.api_flows.max(1) as f64;
        assert!((1.6..2.6).contains(&r), "volume ratio {r}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_scaled(0.0005, 24);
        let (b, _) = run_scaled(0.0005, 24);
        assert_eq!(a, b);
    }

    #[test]
    fn diurnal_pattern_visible() {
        let (_, truth) = run_scaled(0.002, 264);
        // Compare 03:00 vs 20:00 on a post-release day (day 5).
        let night = truth.cwa_flows_by_hour[5 * 24 + 3];
        let evening = truth.cwa_flows_by_hour[5 * 24 + 20];
        assert!(
            evening as f64 > night as f64 * 2.5,
            "diurnal: night {night}, evening {evening}"
        );
    }
}
