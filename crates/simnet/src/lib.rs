//! # cwa-simnet — the simulated measurement environment
//!
//! This crate stands in for everything the authors *had* but we cannot:
//! the live CWA CDN, sixteen million phones, the German ISP landscape,
//! and BENOCS' NetFlow vantage point in front of the backend data
//! center. It generates the HTTPS traffic the paper measured and runs it
//! through the `cwa-netflow` measurement apparatus:
//!
//! * [`cdn`] — the CWA hosting infrastructure: two IPv4 service prefixes
//!   (the paper filters §2 on "2 IPv4 prefixes mentioned in the CWA
//!   backend documentation"), HTTPS-only servers, DNS names for API and
//!   website, and daily diagnosis-key export files sized by the real
//!   export format from `cwa-exposure`.
//! * [`samplers`] / [`stats`] — seeded samplers for the traffic
//!   generator: exact constant-draw Poisson (inversion + PTRS) and
//!   Binomial (BINV + BTPE) plus paired Box–Muller normals live in the
//!   shared `cwa-samplers` crate (re-exported here as [`samplers`]);
//!   [`stats`] keeps the flow-size policy helpers on top of them.
//! * [`traffic`] — the prefix-cohort traffic generator: every routing
//!   prefix carries its district's share of app users and website
//!   visitors; hourly flow intensities follow adoption × diurnal ×
//!   media; flows get realistic packet/byte sizes; client addresses
//!   honour each ISP's static/dynamic assignment behaviour. Background
//!   (non-CWA) traffic is mixed in so that the analysis' filtering step
//!   has something to reject.
//! * [`vantage`] — the measurement vantage point: border routers running
//!   sampled NetFlow (flow caches + 1-in-N sampling), v5 export, and a
//!   collector that Crypto-PAn-anonymizes client addresses; it also
//!   produces the *side tables* (anonymized-prefix → geolocation /
//!   ISP/router info) that a mediating network operator would hand to
//!   researchers along with anonymized traces.
//! * [`dns`] — the DNS ecosystem: open-resolver query volumes for the
//!   API and website names, an Umbrella-style top-list rank model (§2:
//!   the API name entered the Umbrella Top 1M on June 24 while "the
//!   website never appeared"), and the resolver-based prefix
//!   verification the authors performed.
//! * [`sim`] — the orchestrator tying all models into one seeded,
//!   reproducible simulation run with calibration ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdn;
pub mod dns;
pub mod sim;
pub mod stats;
pub mod traffic;
pub mod vantage;

pub use cwa_samplers as samplers;

pub use cdn::{CdnConfig, CdnMigration, MIGRATION_PREFIX};
pub use dns::{DnsStudy, TopListModel};
pub use sim::{
    ExtraOutbreak, OutbreakTweaks, PreparedSim, ScenarioKind, SimConfig, SimOutput, Simulation,
    TrafficTuning,
};
pub use traffic::{GroundTruth, TrafficConfig};
pub use vantage::{
    run_sharded_into, shard_keys, ExportFormat, IspSideEntry, ShardKeyMode, VantageConfig,
    VantagePoint, VantageRunStats,
};
