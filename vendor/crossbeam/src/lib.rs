//! Vendored `crossbeam` facade backed by the standard library.
//!
//! Provides `crossbeam::thread::scope` (over `std::thread::scope`, with
//! worker panics surfaced as `Err` like the real crate) and
//! `crossbeam::channel` (over `std::sync::mpsc`) — the exact surface the
//! parallel vantage-point driver uses.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` if any spawned thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle for spawning threads bound to the scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        std: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = *self;
            self.std.spawn(move || f(&inner))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. A panicking worker yields `Err` (the panic payload).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { std: s }))
        }))
    }
}

/// Multi-producer channels (over `std::sync::mpsc`).
pub mod channel {
    /// One sending half, unbounded or bounded (as in the real crate,
    /// where a single `Sender` type serves both flavours).
    enum SenderKind<T> {
        Unbounded(std::sync::mpsc::Sender<T>),
        Bounded(std::sync::mpsc::SyncSender<T>),
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(SenderKind<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            })
        }
    }

    /// Error: the receiving half disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // As in the real crate: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error from [`Sender::try_send`]: the message comes back either
    /// because the bounded queue is full or because the receiver hung up.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; the caller may retry (or block via
        /// [`Sender::send`]).
        Full(T),
        /// The receiving half disconnected; no send can ever succeed.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the unsent message.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True when the failure was a full queue (retryable).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    // As in the real crate: Debug without requiring `T: Debug`.
    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

    /// Error: the sending half disconnected and the queue drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Enqueues a message. On a bounded channel this blocks while
        /// the channel is full — the backpressure that keeps a fast
        /// producer from outrunning its consumers.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Non-blocking enqueue. On a full bounded channel the message
        /// comes straight back as [`TrySendError::Full`] instead of
        /// blocking — letting callers observe backpressure (e.g. to
        /// account time spent blocked) before falling back to `send`.
        /// Unbounded channels never report `Full`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderKind::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    std::sync::mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    std::sync::mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<Option<T>, RecvError> {
            match self.0.try_recv() {
                Ok(v) => Ok(Some(v)),
                Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
                Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(RecvError),
            }
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded channel holding at most `cap` messages;
    /// `send` blocks while the channel is full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![0u32; 8];
        let res = crate::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
            42
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_becomes_err() {
        let res = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let (tx, rx) = crate::channel::bounded::<u64>(4);
        let sent = AtomicU64::new(0);
        crate::thread::scope(|s| {
            s.spawn(|_| {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                    sent.store(i + 1, Ordering::SeqCst);
                }
            });
            // The producer can never be more than capacity ahead of us.
            for i in 0..1000 {
                assert_eq!(rx.recv().unwrap(), i);
                let ahead = sent.load(Ordering::SeqCst).saturating_sub(i);
                assert!(ahead <= 4 + 1, "producer ran {ahead} ahead of capacity");
            }
        })
        .unwrap();
    }

    #[test]
    fn bounded_send_to_dropped_receiver_errors() {
        let (tx, rx) = crate::channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_then_succeeds_after_drain() {
        use crate::channel::TrySendError;
        let (tx, rx) = crate::channel::bounded::<u8>(1);
        assert!(tx.try_send(1).is_ok());
        match tx.try_send(2) {
            Err(e @ TrySendError::Full(_)) => {
                assert!(e.is_full());
                assert_eq!(e.into_inner(), 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(2).is_ok());
        drop(rx);
        match tx.try_send(3) {
            Err(TrySendError::Disconnected(v)) => assert_eq!(v, 3),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn channel_roundtrip_across_threads() {
        let (tx, rx) = crate::channel::unbounded::<u64>();
        crate::thread::scope(|s| {
            let tx2 = tx.clone();
            s.spawn(move |_| {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let sum: u64 = (0..100).map(|_| rx.recv().unwrap()).sum();
            assert_eq!(sum, 4950);
        })
        .unwrap();
    }
}
