//! Vendored, zero-dependency JSON writer/parser over the offline serde
//! facade's [`Value`] model.
//!
//! Output is deterministic: object entries are emitted in the order the
//! `Value` carries them (derive-generated code preserves declaration
//! order; maps are pre-sorted by the serde facade), floats use Rust's
//! shortest round-trip `Display`, and non-finite floats become `null`
//! (matching the repo's "no NaN in reports" invariant).

#![forbid(unsafe_code)]

pub use serde::{Number, Value};

/// JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ write

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v).map_err(|e| Error::new(e.to_string()))
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // Rust's Display gives the shortest round-trip decimal form;
            // integral floats get a trailing `.0` so they re-parse as F.
            if f == f.trunc() && f.abs() < 1e15 {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{f:.1}"));
            } else {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{f}"));
            }
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parse

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let value = parse_value_str(input)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn parse_value_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("missing low surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-consume up to the next quote or escape and
                    // validate only that chunk — validating from here to
                    // the end of the input per character would make large
                    // documents quadratic to parse.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("bad utf-8"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in ["null", "true", "false", "0", "-7", "3.25", "\"hi\\nthere\""] {
            let v: Value = from_str::<Value>(src).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str::<Value>(&back).unwrap();
            assert_eq!(v, v2, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn strings_parse_in_linear_time_with_multibyte_chars() {
        // A megabyte-scale document full of strings must parse without
        // re-validating the input tail per character (once quadratic,
        // this takes minutes instead of milliseconds).
        let unit = "\"päyload — 日本語 text\\n\",";
        let mut doc = String::from("[");
        for _ in 0..50_000 {
            doc.push_str(unit);
        }
        doc.push_str("\"end\"]");
        let start = std::time::Instant::now();
        let v: Value = from_str(&doc).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "string parsing is super-linear: {:?}",
            start.elapsed()
        );
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 50_001);
        assert_eq!(items[0].as_str(), Some("päyload — 日本語 text\n"));
        assert_eq!(items[50_000].as_str(), Some("end"));
    }

    #[test]
    fn object_order_preserved() {
        let v: Value = from_str("{\"b\": 1, \"a\": [2, {\"x\": null}]}").unwrap();
        assert_eq!(to_string(&v).unwrap(), "{\"b\":1,\"a\":[2,{\"x\":null}]}");
    }

    #[test]
    fn pretty_two_space_indent() {
        let v: Value = from_str("{\"a\":[1]}").unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn float_display_roundtrips() {
        let v = Value::Num(Number::F(0.1 + 0.2));
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        match back {
            Value::Num(n) => assert_eq!(n.as_f64(), 0.1 + 0.2),
            _ => panic!("not a number"),
        }
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
        let back: f64 = from_str("4.0").unwrap();
        assert_eq!(back, 4.0);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn unicode_escapes() {
        let v: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "é😀");
    }
}
