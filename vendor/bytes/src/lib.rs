//! Vendored, zero-dependency subset of the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable, sliceable immutable byte
//! buffer), [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`]
//! cursor traits — the surface the NetFlow codecs use. Backed by
//! `Arc<Vec<u8>>`; `from_static` copies (fine for this workspace's
//! test-only use of it).

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice (copied; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copies a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range {}",
            self.len()
        );
        Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the
    /// rest. Both halves share the allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} past end {}", self.len());
        let front = Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }

    /// Splits off and returns everything from `at` on; `self` keeps the
    /// front. Both halves share the allocation.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off {at} past end {}", self.len());
        let back = Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        back
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            buf: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

/// A growable byte buffer for building wire messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { buf: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// Read cursor over a byte buffer (big-endian accessors, as on the
/// network wire).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Copies bytes out and advances.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance {n} past end {}", self.len());
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte buffer (big-endian).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_u64(0x0102_0304_0506_0708);
        let mut r = b.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(&b.slice(..2)[..], &[1, 2]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn index_through_deref() {
        let mut m = BytesMut::from(&[9u8, 8, 7][..]);
        m[0] = 1;
        let b = m.freeze();
        assert_eq!(b[0], 1);
        assert_eq!(b, Bytes::from(vec![1, 8, 7]));
    }
}
