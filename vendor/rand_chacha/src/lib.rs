//! Vendored ChaCha-based RNGs (`ChaCha8Rng`, `ChaCha12Rng`,
//! `ChaCha20Rng`) implementing the vendored `rand` traits.
//!
//! The keystream follows the ChaCha specification (RFC 8439 quarter
//! round, "expand 32-byte k" constants, 64-bit block counter in words
//! 12–13, zero nonce) with output consumed little-endian byte-wise, so
//! seeded streams are stable across platforms and releases.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BLOCK_BYTES: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha keystream generator with `ROUNDS` rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u8; BLOCK_BYTES],
    /// Bytes of `buf` already consumed.
    index: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, (w, s)) in working.iter().zip(state.iter()).enumerate() {
            let word = w.wrapping_add(*s);
            self.buf[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn take(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.index == BLOCK_BYTES {
                self.refill();
            }
            let n = (dest.len() - written).min(BLOCK_BYTES - self.index);
            dest[written..written + n].copy_from_slice(&self.buf[self.index..self.index + n]);
            self.index += n;
            written += n;
        }
    }

    /// Selects an independent keystream (nonce words).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BLOCK_BYTES; // force refill
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes([
                seed[i * 4],
                seed[i * 4 + 1],
                seed[i * 4 + 2],
                seed[i * 4 + 3],
            ]);
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BLOCK_BYTES],
            index: BLOCK_BYTES,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.take(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.take(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.take(dest);
    }
}

/// ChaCha with 8 rounds (the workspace's workhorse RNG).
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(1235);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha20_known_block() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 000000090000004a00000000. Our layout fixes the nonce to
        // the stream id, so check the zero-nonce/zero-counter keystream
        // against an independently computed reference property instead:
        // the first block must differ from the second and be stable.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u64();
        let mut rng2 = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(first, rng2.next_u64());
        // Known first 8 keystream bytes of ChaCha20 with zero key,
        // zero nonce, counter 0: 76 b8 e0 ad a0 f1 3d 90.
        let mut rng3 = ChaCha20Rng::from_seed([0u8; 32]);
        let mut out = [0u8; 8];
        rng3.fill_bytes(&mut out);
        assert_eq!(out, [0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90]);
    }

    #[test]
    fn byte_and_word_reads_agree() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut bytes = [0u8; 8];
        a.fill_bytes(&mut bytes);
        assert_eq!(u64::from_le_bytes(bytes), b.next_u64());
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
