//! Vendored property-testing mini-framework with a proptest-compatible
//! surface (offline build; the real crate is unavailable).
//!
//! Supports the subset this workspace uses: `proptest! { #[test] fn
//! f(x: T, y in strategy) { .. } }` with both typed (`Arbitrary`) and
//! `in`-strategy bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, `#![proptest_config(..)]`,
//! integer range strategies, tuple strategies, `collection::vec`,
//! `prop_map`, and a printable-string strategy for `"\PC{a,b}"`
//! patterns. Cases are generated from a per-test deterministic RNG, so
//! failures reproduce exactly.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64 seeded from the test name).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name: every run replays the same cases.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, mixed so short names diverge.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        // Widening-multiply reduction; bias is ≤ span/2^64, irrelevant
        // for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// -------------------------------------------------------------- Strategy

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter for [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ------------------------------------------------------------- Arbitrary

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ordinary magnitudes; occasionally exercise extremes.
        match rng.below(8) {
            0 => 0.0,
            1 => -rng.unit_f64() * 1e6,
            _ => rng.unit_f64() * 1e6,
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ------------------------------------------------------ range strategies

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ------------------------------------------------------ tuple strategies

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ------------------------------------------------------ string strategy

/// `&str` patterns act as (a tiny subset of) regex strategies. Supported
/// here: `\PC{lo,hi}` — `lo..=hi` printable (non-control) characters —
/// which is the only pattern this workspace uses.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_pc_repetition(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            // Mostly printable ASCII; sprinkle in multi-byte scalars so
            // parsers see real UTF-8 boundaries.
            let c = match rng.below(20) {
                0 => 'é',
                1 => 'π',
                2 => '💡',
                _ => char::from(0x20 + rng.below(0x5f) as u8),
            };
            s.push(c);
        }
        s
    }
}

fn parse_pc_repetition(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix("\\PC")?;
    if rest.is_empty() {
        return Some((1, 1));
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

// --------------------------------------------------------- collections

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector strategy: `len` elements of `elem` per case.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------------------- macros

/// Defines property tests. Each `#[test] fn name(args) { body }` becomes
/// a zero-arg test that draws `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!((<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    $crate::__proptest_bind!(__rng; ($($args)*) {
                        let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                        __case()
                    });
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 100_000,
                            "prop_assume rejected too many cases in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("property failed in {} (case {}): {}",
                            stringify!($name), __accepted, __msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; () $then:block) => { $then };
    ($rng:ident; (,) $then:block) => { $then };
    ($rng:ident; ($x:ident in $s:expr) $then:block) => {{
        let $x = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng; () $then)
    }};
    ($rng:ident; ($x:ident in $s:expr, $($rest:tt)*) $then:block) => {{
        let $x = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng; ($($rest)*) $then)
    }};
    ($rng:ident; (mut $x:ident : $t:ty) $then:block) => {{
        let mut $x: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; () $then)
    }};
    ($rng:ident; (mut $x:ident : $t:ty, $($rest:tt)*) $then:block) => {{
        let mut $x: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; ($($rest)*) $then)
    }};
    ($rng:ident; ($x:ident : $t:ty) $then:block) => {{
        let $x: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; () $then)
    }};
    ($rng:ident; ($x:ident : $t:ty, $($rest:tt)*) $then:block) => {{
        let $x: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; ($($rest)*) $then)
    }};
}

/// Skips the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property body (fails the case with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right` ({}:{})\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                __a,
                __b
            )));
        }
    }};
}

/// Asserts inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right` ({}:{})\n  both: {:?}",
                file!(),
                line!(),
                __a
            )));
        }
    }};
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(1u64..=u32::MAX as u64), &mut rng);
            assert!(w >= 1 && w <= u32::MAX as u64);
            let s = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    proptest! {
        #[test]
        fn macro_binds_both_forms(x: u8, y in 0u32..10, v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assume!(x != 255);
            prop_assert!(y < 10);
            prop_assert!(v.len() < 16);
            prop_assert_eq!(u32::from(x) * 2, u32::from(x) + u32::from(x));
            prop_assert_ne!(y, 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn config_override_applies(pair in (0u8..4, "\\PC{0,8}")) {
            let (n, s) = pair;
            prop_assert!(n < 4);
            prop_assert!(s.chars().count() <= 8);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
