//! Vendored micro-benchmark harness with a criterion-compatible surface
//! (the real crate is unavailable offline).
//!
//! Implements the subset the bench suite uses: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `sample_size`, `throughput`,
//! `finish`), `Bencher::iter`, `black_box`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! warmup + adaptive-batch median over wall-clock `Instant`, reported
//! as ns/iter (plus derived throughput when configured).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_owned(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    tput: Option<Throughput>,
    f: &mut F,
) {
    // Warmup + calibration: find an iteration count that takes ~2 ms so
    // each sample is long enough for the clock to resolve.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let extra = match tput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let gib = n as f64 / median; // bytes/ns == GiB-ish/s (1e9)
            format!("  ({:.3} GB/s)", gib)
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / median)
        }
        _ => String::new(),
    };
    println!("{name:<44} {:>12.1} ns/iter{extra}", median);
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("xor", |b| b.iter(|| black_box(7u64 ^ 13)));
        g.finish();
    }
}
