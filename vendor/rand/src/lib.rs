//! Vendored, zero-dependency subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses: the three core
//! traits ([`RngCore`], [`SeedableRng`], [`Rng`]), unbiased integer
//! ranges (Lemire's widening-multiply method), the standard float
//! distribution, and `seed_from_u64` (PCG32 seed expansion, matching
//! upstream `rand_core` so seeded streams stay stable).
//!
//! Only determinism and statistical soundness are goals here; this is
//! not a cryptographic RNG and not a drop-in for every `rand` feature.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via PCG32 (the same expansion
    /// `rand_core` 0.6 uses, so `seed_from_u64(n)` produces the same
    /// seed bytes as upstream).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (unbiased).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution: uniform over the
/// full integer domain, `[0, 1)` for floats.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, u128 => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` via Lemire's widening
/// multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

fn uniform_u32<R: RngCore + ?Sized>(rng: &mut R, span: u32) -> u32 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u32();
        let m = u64::from(x) * u64::from(span);
        if (m as u32) >= threshold {
            return (m >> 32) as u32;
        }
    }
}

macro_rules! impl_range_uint {
    ($($t:ty => $uniform:ident / $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as $wide;
                self.start + $uniform(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return StandardSample::sample_standard(rng);
                }
                let span = (hi - lo) as $wide + 1;
                lo + $uniform(rng, span) as $t
            }
        }
    )*};
}

impl_range_uint!(
    u8 => uniform_u32 / u32, u16 => uniform_u32 / u32, u32 => uniform_u32 / u32,
    u64 => uniform_u64 / u64, usize => uniform_u64 / u64
);

macro_rules! impl_range_int {
    ($($t:ty => $u:ty => $uniform:ident / $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as $wide;
                self.start.wrapping_add($uniform(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return StandardSample::sample_standard(rng);
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as $wide + 1;
                lo.wrapping_add($uniform(rng, span) as $t)
            }
        }
    )*};
}

impl_range_int!(
    i8 => u8 => uniform_u32 / u32, i16 => u16 => uniform_u32 / u32,
    i32 => u32 => uniform_u32 / u32, i64 => u64 => uniform_u64 / u64,
    isize => usize => uniform_u64 / u64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let x: $t = StandardSample::sample_standard(rng);
                self.start + (self.end - self.start) * x
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let x: $t = StandardSample::sample_standard(rng);
                lo + (hi - lo) * x
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Compatibility stand-in for `rand::rngs` (only what the repo needs).
pub mod rngs {
    /// A tiny SplitMix64 generator for places that just need *a* seeded
    /// RNG without pulling in ChaCha.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn standard_float_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn seed_from_u64_is_stable() {
        // Golden values pin the PCG32 expansion: same seed, same stream.
        let a = SmallRng::seed_from_u64(42).next_u64();
        let b = SmallRng::seed_from_u64(42).next_u64();
        assert_eq!(a, b);
        assert_ne!(SmallRng::seed_from_u64(43).next_u64(), a);
    }
}
