//! Vendored `parking_lot` facade over `std::sync`.
//!
//! Exposes `Mutex` and `RwLock` with parking_lot's non-poisoning lock
//! API (`lock()` returns the guard directly). Poisoned std locks are
//! recovered transparently, matching parking_lot's semantics of not
//! propagating panics through locks.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
