//! Vendored `#[derive(Serialize, Deserialize)]` for the offline serde
//! facade. No `syn`/`quote` are available, so the item is parsed
//! directly from the `proc_macro::TokenStream` and the impls are
//! emitted as source text.
//!
//! Supported shapes (everything this workspace derives on): structs
//! with named fields, tuple/newtype structs, unit structs, and enums
//! whose variants are unit, newtype/tuple, or struct-like. Generic
//! types are not supported and produce a compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Emits `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Emits `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility
    // until the `struct` / `enum` keyword.
    let kind = loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, etc.
            }
            Some(_) => i += 1, // e.g. the group in `pub(crate)`
            None => panic!("serde derive: no struct/enum keyword found"),
        }
    };

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported");
    }

    if kind == "struct" {
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        };
        Item::Struct { name, fields }
    } else {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde derive: expected enum body, got {other:?}"),
        };
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                toks.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        i += 2; // name + ':'

        // Skip the type up to the next top-level comma. Angle brackets
        // are plain puncts (not groups), so track their depth to skip
        // commas inside e.g. `HashMap<K, V>`.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(g: &Group) -> usize {
    let mut count = 0usize;
    let mut seg_nonempty = false;
    let mut angle = 0i32;
    for t in g.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                seg_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                seg_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if seg_nonempty {
                    count += 1;
                }
                seg_nonempty = false;
            }
            _ => seg_nonempty = true,
        }
    }
    if seg_nonempty {
        count += 1;
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(body));
                i += 1;
                f
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(body));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_owned(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\"))"
                        ),
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__t0) => ::serde::Value::Object(vec![\
                             (String::from(\"{vname}\"), ::serde::Serialize::to_value(__t0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__t{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__t{k})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__obj, \"{f}\")?"))
                        .collect();
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| \
                         ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_array().ok_or_else(|| \
                         ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return Err(::serde::DeError::custom(\
                             \"wrong number of elements for {name}\"));\n\
                         }}\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__obj, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __obj = __inner.as_object().ok_or_else(|| \
                                     ::serde::DeError::expected(\"object\", \"{name}::{vname}\"))?;\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?))"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __items = __inner.as_array().ok_or_else(|| \
                                     ::serde::DeError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::DeError::custom(\
                                         \"wrong number of elements for {name}::{vname}\"));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let mut unit_match = unit_arms.join(",\n");
            if !unit_match.is_empty() {
                unit_match.push(',');
            }
            let mut data_match = data_arms.join(",\n");
            if !data_match.is_empty() {
                data_match.push(',');
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_match}\n\
                                 __other => Err(::serde::DeError::custom(format!(\
                                     \"unknown variant `{{}}` of {name}\", __other))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 let _ = __inner;\n\
                                 match __tag.as_str() {{\n\
                                     {data_match}\n\
                                     __other => Err(::serde::DeError::custom(format!(\
                                         \"unknown variant `{{}}` of {name}\", __other))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::DeError::expected(\
                                 \"variant string or single-key object\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
