//! Vendored, zero-dependency `serde` facade.
//!
//! The build environment is offline, so this workspace ships its own
//! minimal serialization framework under the familiar `serde` name: a
//! JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that
//! convert to/from it, and `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the companion `serde_derive` proc-macro crate).
//!
//! Representation choices follow upstream serde's JSON conventions:
//! structs → objects (field order preserved), newtype structs → inner
//! value, tuples/tuple structs/arrays → arrays, unit enum variants →
//! `"Name"`, data-carrying variants → `{"Name": …}`, `Option` →
//! `null`/value, maps → objects with stringified keys (sorted, so output
//! is deterministic regardless of `HashMap` iteration order).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integer or float).
    Num(Number),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved → stable JSON output).
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer exactness beyond `f64` range.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Float.
    F(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
            && match (self, other) {
                (Number::U(a), Number::U(b)) => a == b,
                (Number::I(a), Number::I(b)) => a == b,
                _ => true,
            }
    }
}

impl Number {
    /// Lossy float view.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// Exact `u64` view, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// Exact `i64` view, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Compatibility alias so `serde::de::Error`-style paths resolve.
pub mod de {
    pub use super::{DeError, Deserialize};
}

/// Compatibility alias for `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::expected("unsigned integer in range", stringify!($t))),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Num(Number::U(v as u64)) } else { Value::Num(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::expected("integer in range", stringify!($t))),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null (JSON has no NaN/inf).
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64() as f32),
            _ => Err(DeError::expected("number", "f32")),
        }
    }
}

// ----------------------------------------------------------- scalars, text

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// --------------------------------------------------------------- std::net

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError::custom(format!("bad IPv4 address `{s}`"))),
            _ => Err(DeError::expected("string", "Ipv4Addr")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), self.as_secs().to_value()),
            ("nanos".to_owned(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs: u64 = field(
            v.as_object()
                .ok_or_else(|| DeError::expected("object", "Duration"))?,
            "secs",
        )?;
        let nanos: u32 = field(v.as_object().unwrap(), "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "array"))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch after parse"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ------------------------------------------------------------------- maps

/// Serializes a map key: strings pass through, everything else becomes
/// its compact JSON text (numbers as digits, unit enum variants as their
/// name).
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::Num(Number::U(u)) => u.to_string(),
        Value::Num(Number::I(i)) => i.to_string(),
        Value::Num(Number::F(f)) => format!("{f}"),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key shape: {other:?}"),
    }
}

/// Reconstructs a map key from its string form: tries the string
/// directly, then integer / float readings.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::F(f))) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(DeError::custom(format!(
        "cannot reconstruct map key from `{s}`"
    )))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        // HashMap iteration order is nondeterministic; sort for stable,
        // bit-identical serialized output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
            .collect()
    }
}

// --------------------------------------------------- derive support shims

/// Looks up a required struct field (derive-generated code calls this).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
        }
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec() {
        let v: Vec<Option<f64>> = vec![None, Some(1.5)];
        let val = v.to_value();
        assert_eq!(
            val,
            Value::Array(vec![Value::Null, Value::Num(Number::F(1.5))])
        );
        let back: Vec<Option<f64>> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_keys_sorted_and_roundtrip() {
        let mut m = HashMap::new();
        m.insert(10u32, 1u64);
        m.insert(2u32, 2u64);
        let val = m.to_value();
        let obj = val.as_object().unwrap();
        assert_eq!(obj[0].0, "10"); // lexicographic sort is fine; must be stable
        let back: HashMap<u32, u64> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ipv4_roundtrip() {
        let a = std::net::Ipv4Addr::new(81, 200, 16, 1);
        let back = std::net::Ipv4Addr::from_value(&a.to_value()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (4.0f64, 12.0f64);
        let back: (f64, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 3;
        let back = u64::from_value(&big.to_value()).unwrap();
        assert_eq!(back, big);
    }
}
