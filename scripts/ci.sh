#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repository that contains it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> streaming equivalence (batch report == streaming report)"
cargo test -q --test streaming

echo "==> streaming scale-sweep smoke (claims must pass end to end)"
# The lower bound sits at 0.02: below that, day-1 district coverage
# (claim C5b) is statistically starved in batch and streaming alike.
./target/release/cwa-repro study --scale 0.02 --streaming > /dev/null
./target/release/cwa-repro study --scale 0.03 --streaming --parallel > /dev/null

echo "==> ci green"
