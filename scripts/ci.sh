#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repository that contains it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> streaming + sharded equivalence (batch == streaming == sharded)"
cargo test -q --test streaming
cargo test -q --test merge_prop

echo "==> sampler distribution smoke (exact Poisson/binomial/normal moments + tails)"
# The statistical regression suite of cwa-samplers pins the sampler
# distributions against exact pmf arithmetic (moments in every
# algorithm regime, tail masses, cutoff continuity, pair-cache RNG
# accounting). Release mode: the debug-mode suite is an order of
# magnitude slower and the distributions cannot differ.
cargo test -q -p cwa-samplers --release

echo "==> streaming scale-sweep smoke (claims must pass end to end)"
# 0.02 is the smallest scale at which every cell clears its min_support
# threshold (the full claim table evaluates). Below it, starved cells
# degrade into per-claim Starved verdicts — exit 0 without --strict —
# covered by tests/streaming.rs::starved_scale_degrades_identically_across_paths.
./target/release/cwa-repro study --scale 0.02 --streaming > /dev/null
./target/release/cwa-repro study --scale 0.03 --streaming --parallel > /dev/null

echo "==> starved-scale degradation smoke (0.005 must degrade, not abort)"
STARVED_OUT="$(mktemp /tmp/cwa-starved.XXXXXX.txt)"
./target/release/cwa-repro study --scale 0.005 --streaming > "$STARVED_OUT"
grep -q 'starved' "$STARVED_OUT" || { echo "scale 0.005 produced no starved verdicts"; exit 1; }
# The same scale under --strict must refuse with the structured error.
if ./target/release/cwa-repro study --scale 0.0000001 --strict > /dev/null 2>&1; then
    echo "--strict accepted a fully starved scale"; exit 1
fi
rm -f "$STARVED_OUT"

echo "==> scenario sweep smoke (claim-survival matrix, starved cell expected)"
SWEEP_TOML="$(mktemp /tmp/cwa-sweep.XXXXXX.toml)"
SWEEP_JSON_A="$(mktemp /tmp/cwa-sweep-a.XXXXXX.json)"
SWEEP_JSON_B="$(mktemp /tmp/cwa-sweep-b.XXXXXX.json)"
cat > "$SWEEP_TOML" <<'EOF'
[[scenario]]
name = "baseline"

[[scenario]]
name = "coarse-sampling"
[scenario.vantage]
sampling_interval = 1000

[[scenario]]
name = "starved-tiny-scale"
scale = 0.004
EOF
SWEEP_OUT="$(./target/release/cwa-repro sweep --scenarios "$SWEEP_TOML" --scale 0.01 --json "$SWEEP_JSON_A" 2>/dev/null)"
echo "$SWEEP_OUT" | grep -q 'starved' || { echo "sweep reported no starved cell for the drained scenario"; exit 1; }
echo "$SWEEP_OUT" | grep -q 'starved-tiny-scale' || { echo "sweep dropped a scenario row"; exit 1; }
# The survival table must not depend on the shard count.
./target/release/cwa-repro sweep --scenarios "$SWEEP_TOML" --scale 0.01 --shards 2 --json "$SWEEP_JSON_B" > /dev/null 2>&1
cmp -s "$SWEEP_JSON_A" "$SWEEP_JSON_B" || { echo "sweep JSON differs between 1 and 2 shards"; exit 1; }
rm -f "$SWEEP_TOML" "$SWEEP_JSON_A" "$SWEEP_JSON_B"

echo "==> sharded smoke (2 shards at scale 0.02)"
./target/release/cwa-repro study --scale 0.02 --shards 2 > /dev/null

echo "==> flight-recorder smoke (2 shards, --trace + trace-summary)"
TRACE_TMP="$(mktemp /tmp/cwa-trace.XXXXXX.json)"
./target/release/cwa-repro study --scale 0.02 --shards 2 --trace "$TRACE_TMP" > /dev/null
python3 - "$TRACE_TMP" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
spans = {(e["pid"], e["name"]) for e in events if e.get("ph") == "X"}
procs = {e["pid"]: e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"}
shards = sorted(p for p, n in procs.items() if n.startswith("shard"))
assert len(shards) == 2, f"expected 2 shard processes, got {procs}"
for pid in shards:
    for span in ("produce", "filter", "analyze"):
        assert (pid, span) in spans, f"missing {span} span for {procs[pid]}"
print(f"    {len(events)} events; {', '.join(procs[p] for p in shards)} "
      "each carry produce/filter/analyze spans")
EOF
./target/release/cwa-repro trace-summary "$TRACE_TMP" > /dev/null
rm -f "$TRACE_TMP"

echo "==> live telemetry smoke (2 shards, --serve + heartbeat jsonl)"
HB_JSONL="$(mktemp /tmp/cwa-heartbeat.XXXXXX.jsonl)"
TELEM_LOG="$(mktemp /tmp/cwa-telemetry.XXXXXX.log)"
./target/release/cwa-repro study --scale 0.02 --shards 2 \
    --serve 127.0.0.1:0 --serve-linger-ms 6000 \
    --heartbeat-ms 100 --heartbeat-jsonl "$HB_JSONL" \
    > /dev/null 2> "$TELEM_LOG" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*serving telemetry on \([0-9.:]*\).*/\1/p' "$TELEM_LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "scrape server never announced its address"; exit 1; }
# The registry is empty until the pipeline wires its first metrics;
# wait for the first counter to land before asserting on content.
WARM=""
for _ in $(seq 1 100); do
    if ./target/release/cwa-repro scrape "$ADDR" /metrics 2>/dev/null | grep -q '^# TYPE '; then
        WARM=1
        break
    fi
    sleep 0.1
done
[ -n "$WARM" ] || { echo "/metrics never produced a sample"; exit 1; }
./target/release/cwa-repro scrape "$ADDR" /healthz      | grep -q '"status"'          || { echo "/healthz malformed"; exit 1; }
./target/release/cwa-repro scrape "$ADDR" /metrics      | grep -q '^# TYPE '          || { echo "/metrics malformed"; exit 1; }
./target/release/cwa-repro scrape "$ADDR" /metrics.json | grep -q '"cwa-obs/v1"'      || { echo "/metrics.json malformed"; exit 1; }
./target/release/cwa-repro scrape "$ADDR" /progress     | grep -q '"cwa-progress/v1"' || { echo "/progress malformed"; exit 1; }
wait "$SERVE_PID"
python3 - "$HB_JSONL" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) >= 3, f"heartbeat wrote only {len(lines)} samples"
last_ts = 0
for line in lines:
    doc = json.loads(line)
    assert doc["schema"] == "cwa-obs/v1", doc.get("schema")
    assert doc["ts_ms"] >= last_ts, "timestamps regressed"
    last_ts = doc["ts_ms"]
assert "sim.progress.done" in lines[-1], "final sample lacks completion gauge"
print(f"    {len(lines)} append-valid heartbeat samples; scrape endpoints answered live")
EOF
rm -f "$HB_JSONL" "$TELEM_LOG"

echo "==> live replay smoke (--live --serve: /report day advance, verdicts, dashboard, watch --claims)"
# A paced replay publishes an interim report after every simulated day;
# two /report scrapes a moment apart must show the day counter
# advancing with well-formed claim verdicts, and `watch --claims` must
# follow the run to completion. The batch paths stay untouched by live
# mode, so the obs-diff gate below keeps guarding bit-identity.
LIVE_LOG="$(mktemp /tmp/cwa-live.XXXXXX.log)"
REPORT_A="$(mktemp /tmp/cwa-report-a.XXXXXX.json)"
REPORT_B="$(mktemp /tmp/cwa-report-b.XXXXXX.json)"
./target/release/cwa-repro study --scale 0.02 --live --replay-speed 200000 \
    --serve 127.0.0.1:0 --serve-linger-ms 4000 \
    > /dev/null 2> "$LIVE_LOG" &
LIVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*serving telemetry on \([0-9.:]*\).*/\1/p' "$LIVE_LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "live run never announced its address"; exit 1; }
# /report answers 503 until the first day's report publishes.
GOT=""
for _ in $(seq 1 150); do
    if ./target/release/cwa-repro scrape "$ADDR" /report > "$REPORT_A" 2>/dev/null; then
        GOT=1
        break
    fi
    sleep 0.1
done
[ -n "$GOT" ] || { echo "/report never published"; exit 1; }
./target/release/cwa-repro scrape "$ADDR" /figures/adoption | grep -q '"cwa-live-figure/v1"' || { echo "/figures/adoption malformed"; exit 1; }
# The dashboard must be one self-contained page — no external assets —
# and must name every endpoint it polls, so a stale copy that predates
# an endpoint rename fails here rather than silently showing blanks.
DASH_HTML="$(mktemp /tmp/cwa-dash.XXXXXX.html)"
./target/release/cwa-repro scrape "$ADDR" /dashboard > "$DASH_HTML" || { echo "/dashboard scrape failed"; exit 1; }
head -n1 "$DASH_HTML" | grep -qi '<!DOCTYPE html>' || { echo "/dashboard is not an HTML document"; exit 1; }
if grep -qE 'http:|https:|src=|href=|@import|url\(' "$DASH_HTML"; then
    echo "/dashboard references external assets; it must be self-contained"; exit 1
fi
for ep in /report /figures/adoption /figures/geo /figures/outbreak /progress /metrics.json; do
    grep -q "$ep" "$DASH_HTML" || { echo "/dashboard does not poll $ep"; exit 1; }
done
rm -f "$DASH_HTML"
sleep 1.5
./target/release/cwa-repro scrape "$ADDR" /report > "$REPORT_B" || { echo "second /report scrape failed"; exit 1; }
# `watch --claims` follows the rest of the replay and exits 0 at done.
./target/release/cwa-repro watch --claims "$ADDR" --interval-ms 250 > /dev/null
wait "$LIVE_PID"
python3 - "$REPORT_A" "$REPORT_B" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
def check_verdicts(claims, what):
    assert claims, f"live report carries no {what}"
    for c in claims:
        v = c["verdict"]
        assert v in ("Pass", "Fail") or (isinstance(v, dict) and "Starved" in v), \
            f"malformed {what} verdict {v!r} for claim {c.get('id')}"
for doc in (a, b):
    assert doc["schema"] == "cwa-live/v1", doc.get("schema")
    check_verdicts(doc["report"]["claims"], "cumulative")
    assert doc["window_to_day"] > doc["window_from_day"], \
        f"empty window {doc['window_from_day']}..{doc['window_to_day']}"
    check_verdicts(doc["window_verdicts"], "windowed")
assert b["day"] > a["day"], f"day counter did not advance: {a['day']} -> {b['day']}"
print(f"    /report advanced day {a['day']} -> {b['day']}; "
      f"{len(b['report']['claims'])} cumulative + {len(b['window_verdicts'])} "
      "windowed well-formed verdicts per snapshot")
EOF
rm -f "$LIVE_LOG" "$REPORT_A" "$REPORT_B"

echo "==> obs-diff regression gate (same-seed streaming snapshots)"
# Wall-clock phase timers on a shared CI host are volatile, so the gate
# uses a generous threshold; it exists to catch order-of-magnitude
# regressions and exercise the nonzero-exit path wiring.
OBS_A="$(mktemp /tmp/cwa-obs-a.XXXXXX.json)"
OBS_B="$(mktemp /tmp/cwa-obs-b.XXXXXX.json)"
./target/release/cwa-repro study --scale 0.02 --streaming --metrics "$OBS_A" > /dev/null
./target/release/cwa-repro study --scale 0.02 --streaming --metrics "$OBS_B" > /dev/null
./target/release/cwa-repro obs-diff "$OBS_A" "$OBS_B" --threshold 300
rm -f "$OBS_A" "$OBS_B"

echo "==> sharded speedup guard (BENCH_sharded.json)"
# Guard against accidental serialization of the merge path: with real
# parallel hardware, 4 shards must beat the single-threaded streaming
# run. On a single-core host every shard count time-slices one CPU, so
# the floor is only enforced when the measuring host had >= 2 CPUs.
if [ -f BENCH_sharded.json ]; then
    python3 - <<'EOF'
import json, sys
doc = json.load(open("BENCH_sharded.json"))
cpus = doc.get("host_cpus", 1)
if cpus < 2:
    print(f"    host_cpus={cpus}: speedup floor not enforced (no parallel hardware)")
    sys.exit(0)
for run in doc["runs"]:
    for row in run["sharded"]:
        if row["shards"] == 4 and row["speedup"] < 1.0:
            sys.exit(
                f"4-shard speedup {row['speedup']} < 1.0 at scale "
                f"{run['scale']} (host_cpus={cpus}): merge path serialized?"
            )
print(f"    host_cpus={cpus}: 4-shard speedup floor holds")
EOF
else
    echo "    BENCH_sharded.json missing; run: cargo bench -p cwa-bench --bench sharded"
    exit 1
fi

echo "==> chunked-pipeline smoke (scale 0.2 streaming)"
# One order of magnitude above the bench scale: exercises the columnar
# chunk path (collector pack -> FanOut select_into -> per-consumer
# observe_chunk) long enough for the Crypto-PAn prefix cache to matter.
./target/release/cwa-repro study --scale 0.2 --streaming > /dev/null

echo "==> chunked record-path floor (BENCH_fullscale.json)"
# The fullscale bench replays one captured scale-0.02 record stream
# through both shapes of the record path — per-record uncached
# Crypto-PAn + per-record filter + 4 dyn observe calls (the
# pre-refactor shape) vs. chunked memoized Crypto-PAn + one column-wise
# select_into + 4 observe_chunk calls — so the ratio is attributable to
# the record path alone. The ≥2x floor guards that stage. The
# *end-to-end* streaming wall vs. the frozen BENCH_streaming.json
# baseline compounds the chunked record path with the exact-sampler
# swap in the traffic generator (the measured value is ~1.6x; the
# pre-swap chunked pipeline alone sat at ~1.1x because ~80% of wall
# was the generator) — it is held to a ≥1.3x floor. Both floors are
# only enforced when this host matches the measuring host's CPU count
# (same gate style as the sharded guard above): numbers inherited from
# different hardware are reported, not enforced.
if [ -f BENCH_fullscale.json ]; then
    python3 - <<'EOF'
import json, os, sys
doc = json.load(open("BENCH_fullscale.json"))
cpus = doc.get("host_cpus", 1)
host = os.cpu_count() or 1
enforce = host == cpus
if not enforce:
    print(f"    measured on a {cpus}-cpu host, this one has {host}: floors reported, not enforced")
rp = doc["record_path"]
print(
    f"    record path at scale {rp['scale']}: per-record {rp['per_record_ms']}ms, "
    f"chunked {rp['chunked_ms']}ms -> {rp['speedup']}x"
)
if enforce and rp["speedup"] < 2.0:
    sys.exit(f"chunked record path only {rp['speedup']}x the per-record shape (< 2.0x floor)")
cmp_ = doc["comparison"]
e2e = cmp_.get("speedup_vs_baseline")
if e2e is None:
    sys.exit("BENCH_fullscale.json has no baseline comparison; is BENCH_streaming.json intact?")
print(f"    end to end at scale {cmp_['scale']}: {e2e}x the pre-refactor baseline")
if enforce and e2e < 1.3:
    sys.exit(f"end-to-end streaming regressed to {e2e}x the frozen baseline (< 1.3x floor)")
prod = doc.get("producer")
if prod is None:
    sys.exit("BENCH_fullscale.json has no producer section; re-run the fullscale bench")
share = prod["produce_share_of_streaming"]
print(
    f"    producer at scale {prod['scale']}: {prod['events_per_sec']:.0f} events/s, "
    f"produce span {share * 100:.1f}% of streaming wall"
)
if enforce and share >= 0.5:
    sys.exit(f"produce span is {share * 100:.1f}% of streaming wall (>= 50%): sampler swap regressed?")
EOF
else
    echo "    BENCH_fullscale.json missing; run: cargo bench -p cwa-bench --bench fullscale"
    exit 1
fi

echo "==> ci green"
