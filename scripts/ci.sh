#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repository that contains it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> ci green"
