//! Compares the two generations of exposure risk scoring on identical
//! physical contacts: the **v1** score the CWA used during the paper's
//! measurement window, and the **v2** weighted-minutes model it migrated
//! to afterwards (this reproduction's extension feature).
//!
//! ```sh
//! cargo run --release --example risk_scoring
//! ```

use cwa_exposure::contact::{encounter_to_window, simulate_encounter, Encounter, PathLossModel};
use cwa_exposure::risk_v2::RiskConfigV2;
use cwa_exposure::time::{EnIntervalNumber, TEK_ROLLING_PERIOD};
use cwa_exposure::Device;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCAFE);
    let path_loss = PathLossModel::default();
    let v2 = RiskConfigV2::default();
    let day0 = EnIntervalNumber(144 * 18_430);

    println!("contact scenario                     v1 score   v2 weighted-min   v2 verdict");
    println!("-----------------------------------  ---------  ----------------  ----------");

    let scenarios: [(&str, f64, u32); 6] = [
        ("dinner together, 1 m, 2 h", 1.0, 12),
        ("office desk neighbours, 2 m, 1 h", 2.0, 6),
        ("tram ride, 1.5 m, 30 min", 1.5, 3),
        ("supermarket queue, 2 m, 10 min", 2.0, 1),
        ("same café, 5 m, 1 h", 5.0, 6),
        ("across the street, 15 m, 30 min", 15.0, 3),
    ];

    for (label, distance_m, intervals) in scenarios {
        // Fresh devices per scenario for a clean comparison.
        let mut infected = Device::new(1);
        let mut contact = Device::new(2);
        let encounter = Encounter {
            distance_m,
            start: day0.advance(60),
            intervals,
        };
        simulate_encounter(
            &mut rng,
            &path_loss,
            &mut infected,
            &mut contact,
            &encounter,
        );

        // v1: upload → download → match → score.
        let next_day = EnIntervalNumber(day0.0 + TEK_ROLLING_PERIOD);
        infected.roll_key_if_needed(&mut rng, next_day);
        let keys = infected.upload_diagnosis_keys(next_day, 6);
        let v1_score = contact
            .check_exposure(&keys, next_day)
            .iter()
            .map(|m| m.risk_score.0)
            .max()
            .unwrap_or(0);

        // v2: the same contact as an exposure window.
        let window = encounter_to_window(&mut rng, &path_loss, &encounter, 0, 1);
        let minutes = v2.window_minutes(&window);
        let verdict = v2.overall(std::slice::from_ref(&window));

        println!("{label:<36} {v1_score:<10} {minutes:<17.1} {verdict:?}",);
    }

    println!();
    println!("v1: product of four 0–8 bucket scores (0–4096), threshold-based.");
    println!("v2: attenuation-weighted exposure minutes per day; ≥15 min ⇒ HighRisk.");
    println!("Both agree on the extremes; v2 grades the middle ground more finely.");
}
