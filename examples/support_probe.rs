//! Prints the per-claim verdict table across a ladder of scales, plus
//! (with `CWA_DEBUG_SUPPORT=1`) the raw per-cell observation counts
//! the starvation checks read. The `min_support` thresholds in
//! `cwa-core/src/study.rs` were tuned with this tool — re-run it after
//! changing the simulation's traffic volume to re-derive them:
//!
//! ```sh
//! CWA_DEBUG_SUPPORT=1 cargo run --release --example support_probe
//! ```

use cwa_repro::core::study::persistence_len_for_scale;
use cwa_repro::core::{Study, StudyConfig};

fn main() {
    for &(small, scale) in &[
        (true, 0.0005f64),
        (true, 0.004),
        (true, 0.005),
        (true, 0.01),
        (false, 0.005),
        (false, 0.01),
        (false, 0.02),
    ] {
        let mut cfg = if small {
            StudyConfig::test_small()
        } else {
            StudyConfig::at_scale(scale)
        };
        cfg.sim.scale = scale;
        cfg.persistence_prefix_len = persistence_len_for_scale(scale);
        eprintln!("--- small={small} scale={scale}");
        match Study::new(cfg).run() {
            Ok(r) => {
                for c in &r.claims {
                    eprintln!(
                        "  {:<4} {:<8} measured={}",
                        c.id.code(),
                        c.verdict.label(),
                        c.measured
                    );
                }
            }
            Err(e) => eprintln!("  ERR {e}"),
        }
    }
}
