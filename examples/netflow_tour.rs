//! A tour of the NetFlow measurement substrate — the apparatus behind
//! the paper's data set (§2).
//!
//! ```sh
//! cargo run --release --example netflow_tour
//! ```
//!
//! Demonstrates, step by step, why "the routers Netflow cache eviction
//! settings and sampling result in only observing few packets for most
//! flows", and shows prefix-preserving Crypto-PAn anonymization at work.

use std::net::Ipv4Addr;

use cwa_netflow::anonymize::common_prefix_len;
use cwa_netflow::cache::{FlowCache, FlowCacheConfig};
use cwa_netflow::collector::Collector;
use cwa_netflow::flow::FlowKey;
use cwa_netflow::sampling::sample_packet_count;
use cwa_netflow::v5::packetize;
use cwa_netflow::CryptoPan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // ---- 1. Packet sampling: 1 in 1000. ----
    println!("== 1-in-1000 packet sampling over 10,000 small flows ==");
    let flows = 10_000u32;
    let mut observed = 0u32;
    let mut observed_packets = 0u64;
    for _ in 0..flows {
        let true_packets = rng.gen_range(8..30u64);
        let sampled = sample_packet_count(&mut rng, true_packets, 1000);
        if sampled > 0 {
            observed += 1;
            observed_packets += sampled;
        }
    }
    println!(
        "  {observed} of {flows} flows observed at all ({:.1} %); mean packets when seen: {:.2}",
        100.0 * f64::from(observed) / f64::from(flows),
        observed_packets as f64 / f64::from(observed.max(1))
    );
    println!("  → flow-size-based app/website differentiation is infeasible (§2)\n");

    // ---- 2. The flow cache splits long flows. ----
    println!("== flow cache: active/inactive timeout eviction ==");
    let mut cache = FlowCache::new(FlowCacheConfig::default());
    let key = FlowKey::tcp(
        Ipv4Addr::new(81, 200, 16, 1),
        443,
        Ipv4Addr::new(84, 17, 3, 9),
        49_812,
    );
    // A 10-minute flow with a packet every 5 s.
    let mut t = 0u64;
    while t <= 600_000 {
        cache.account(key, 1420, 0x18, t);
        t += 5_000;
    }
    cache.flush();
    let records = cache.take_expired();
    println!(
        "  one 10-minute flow became {} records (active timeout {} s): {:?} packets each",
        records.len(),
        FlowCacheConfig::default().active_timeout_ms / 1000,
        records.iter().map(|r| r.packets).collect::<Vec<_>>()
    );
    println!("  stats: {:?}\n", cache.stats());

    // ---- 3. NetFlow v5 export + collection. ----
    println!("== NetFlow v5 export ==");
    let (packets, next_seq) = packetize(&records, 1, 1000, 1_592_179_200, 0);
    println!(
        "  {} records → {} datagram(s), {} bytes total, next flow_sequence {}",
        records.len(),
        packets.len(),
        packets.iter().map(|p| p.encode().len()).sum::<usize>(),
        next_seq
    );

    // ---- 4. Crypto-PAn anonymization. ----
    println!("\n== Crypto-PAn prefix-preserving anonymization ==");
    let key32 = *b"cwa-repro-cryptopan-key-32bytes!";
    let cp = CryptoPan::new(&key32);
    let neighbors = [
        Ipv4Addr::new(84, 17, 3, 9),
        Ipv4Addr::new(84, 17, 3, 201),
        Ipv4Addr::new(84, 17, 45, 9),
        Ipv4Addr::new(93, 200, 1, 1),
    ];
    for pair in neighbors.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let (aa, ab) = (cp.anonymize(a), cp.anonymize(b));
        println!(
            "  {a} / {b}: share {:>2} bits  →  {aa} / {ab}: share {:>2} bits",
            common_prefix_len(a, b),
            common_prefix_len(aa, ab)
        );
    }

    // ---- 5. The anonymizing collector end to end. ----
    println!("\n== collector: servers in the clear, clients anonymized ==");
    let mut collector =
        Collector::new_anonymizing(&key32, vec![(Ipv4Addr::new(81, 200, 16, 0), 22)]);
    for p in packets {
        collector.ingest(p.encode()).expect("valid datagram");
    }
    let stored = collector.records();
    println!(
        "  stored record: {} :{} → {} :{}   (server kept, client hidden)",
        stored[0].key.src_ip, stored[0].key.src_port, stored[0].key.dst_ip, stored[0].key.dst_port
    );
    println!(
        "  export loss detected via sequence gaps: {} records",
        collector.total_lost()
    );
}
