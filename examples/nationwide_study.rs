//! The full nationwide study: reproduces Figure 2, Figure 3 and all
//! quantitative claims at a configurable scale, and writes
//! machine-readable outputs (JSON report + CSVs for both figures).
//!
//! ```sh
//! # default: scale 0.05 (≈ 800k peak simulated app users)
//! cargo run --release --example nationwide_study
//!
//! # closer to full Germany (slower):
//! cargo run --release --example nationwide_study -- 0.25 out/
//! ```
//!
//! Arguments: `[scale] [output-dir]`.

use std::fs;
use std::path::PathBuf;

use cwa_core::{Study, StudyConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number in (0, 1]"))
        .unwrap_or(0.05);
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| "out".to_owned()));

    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let config = StudyConfig::at_scale(scale);

    eprintln!("running nationwide study at scale {scale} …");
    let start = std::time::Instant::now();
    let report = Study::new(config).run().expect("study failed");
    eprintln!("simulation + analysis finished in {:?}", start.elapsed());

    // Human-readable report.
    println!("{}", report.render_text());

    // Machine-readable outputs.
    fs::create_dir_all(&out_dir).expect("create output directory");
    let json_path = out_dir.join("report.json");
    fs::write(&json_path, report.to_json()).expect("write report.json");
    let fig2_path = out_dir.join("figure2.csv");
    fs::write(&fig2_path, report.figure2.to_csv()).expect("write figure2.csv");
    let fig3_path = out_dir.join("figure3.csv");
    fs::write(&fig3_path, report.figure3.to_csv()).expect("write figure3.csv");
    let md_path = out_dir.join("claims.md");
    fs::write(&md_path, report.to_markdown_rows()).expect("write claims.md");
    fs::write(out_dir.join("figure2.svg"), report.figure2_svg()).expect("write figure2.svg");
    fs::write(out_dir.join("figure3.svg"), report.figure3_svg()).expect("write figure3.svg");

    eprintln!(
        "wrote {}, {}, {}, {} (+ figure2.svg, figure3.svg)",
        json_path.display(),
        fig2_path.display(),
        fig3_path.display(),
        md_path.display()
    );

    if !report.all_passed() {
        eprintln!(
            "WARNING: {} claim(s) outside their bands",
            report.failures().len()
        );
        std::process::exit(1);
    }
}
