//! The outbreak laboratory: §3's natural experiment, with controls the
//! authors could not run.
//!
//! ```sh
//! cargo run --release --example outbreak_lab
//! ```
//!
//! The paper *observes* that the June-23 traffic surge is nation-wide
//! and concludes news coverage, not local infections, drives app
//! interest. In a simulator the conclusion is testable: we re-run the
//! same ten days under three scenarios (paper world / outbreaks without
//! news / quiet), and report growth ratios with bootstrap confidence
//! intervals.

use cwa_repro::analysis::filter::FlowFilter;
use cwa_repro::analysis::stats;
use cwa_repro::analysis::timeseries::HourlySeries;
use cwa_repro::simnet::sim::ScenarioKind;
use cwa_repro::simnet::{SimConfig, Simulation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SCALE: f64 = 0.01;

fn main() {
    println!("June-23 re-surge under controlled scenarios (measured from sampled records)");
    println!("scenario                         growth   95% bootstrap CI");
    println!("-------------------------------  -------  ----------------");

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for (label, kind) in [
        ("paper (outbreaks + news)", ScenarioKind::Paper),
        ("outbreaks, no news", ScenarioKind::OutbreaksWithoutNews),
        ("quiet (control)", ScenarioKind::Quiet),
    ] {
        let out = Simulation::new(SimConfig {
            scale: SCALE,
            scenario: kind,
            ..SimConfig::default()
        })
        .run();

        // Measured, not ground truth: the sampled record time series.
        let filter = FlowFilter::cwa(out.cdn.service_prefixes.to_vec());
        let matching = filter.apply_owned(&out.records);
        let series = HourlySeries::from_records(matching.iter(), out.config.days * 24);
        let daily = series.daily_flows();

        let pre = &daily[5..8]; // Jun 20–22
        let post = &daily[8..11]; // Jun 23–25
        let growth = post.iter().sum::<u64>() as f64 / pre.iter().sum::<u64>().max(1) as f64;
        let (lo, hi) = stats::bootstrap_growth_ci(&mut rng, pre, post, 2000, 0.05);

        println!("{label:<32} {growth:>6.3}x  [{lo:.3}, {hi:.3}]");
    }

    println!();
    println!("Reading: only the scenario with *news coverage* shows a growth ratio whose");
    println!("confidence interval clears the no-news counterfactual — the paper's");
    println!("\"nation-wide news reports … might contribute\" conclusion, made causal.");
}
