//! Walks the complete Exposure Notification lifecycle of Figure 1 —
//! the *reason* the traffic the paper measures exists at all.
//!
//! ```sh
//! cargo run --release --example exposure_lifecycle
//! ```
//!
//! Alice and Bob ride the same tram; Carol stays home. Alice later tests
//! positive and uploads her keys; the CDN publishes the day's key
//! export; everyone downloads it (the HTTPS flow the paper's vantage
//! point records) and matches locally.

use cwa_exposure::advertisement::tx_power_from_metadata;
use cwa_exposure::export::TemporaryExposureKeyExport;
use cwa_exposure::time::{EnIntervalNumber, STUDY_EPOCH_UNIX, TEK_ROLLING_PERIOD};
use cwa_exposure::Device;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x2020_0616);

    let mut alice = Device::new(1);
    let mut bob = Device::new(2);
    let mut carol = Device::new(3);

    // ---- Day 0 (June 16): the tram ride. ----
    let day0 = EnIntervalNumber::from_unix(STUDY_EPOCH_UNIX + 86_400); // June 16
    println!("== day 0: Alice and Bob share a tram for 30 minutes ==");
    for i in 0..3u32 {
        let t = day0.advance(51 + i); // around 08:30 local
        for d in [&mut alice, &mut bob, &mut carol] {
            d.roll_key_if_needed(&mut rng, t);
        }
        let adv_a = alice.advertise(t);
        let adv_b = bob.advertise(t);
        // 2 m apart in a tram: strong signal, low attenuation.
        bob.observe(&adv_a, t, 28, 10);
        alice.observe(&adv_b, t, 28, 10);
        println!(
            "  interval {}: Alice broadcasts RPI {}, Bob broadcasts RPI {}",
            t.0,
            hex(&adv_a.rpi.0[..4]),
            hex(&adv_b.rpi.0[..4]),
        );
    }
    println!(
        "  Bob's encounter store: {} pseudonymous RPIs (nothing identifies Alice)",
        bob.encounter_count()
    );

    // ---- Day 2 (June 18): Alice tests positive. ----
    let day2 = EnIntervalNumber(day0.0 + 2 * TEK_ROLLING_PERIOD);
    for d in [&mut alice, &mut bob, &mut carol] {
        d.roll_key_if_needed(&mut rng, day2);
        d.expire(day2);
    }
    println!("\n== day 2: Alice tests positive, consents to upload ==");
    let diagnosis_keys = alice.upload_diagnosis_keys(day2, 6);
    println!(
        "  Alice uploads {} temporary exposure keys (verified by health authority)",
        diagnosis_keys.len()
    );

    // ---- The CDN publishes the day's export file, ECDSA-signed. ----
    let export = TemporaryExposureKeyExport::new_de(
        STUDY_EPOCH_UNIX + 2 * 86_400,
        STUDY_EPOCH_UNIX + 3 * 86_400,
        diagnosis_keys,
    );
    let backend_key = {
        let mut secret = [0u8; 32];
        secret[..16].copy_from_slice(b"cwa-backend-sign");
        secret[31] = 1;
        cwa_crypto::SigningKey::from_bytes(&secret)
    };
    let info = cwa_exposure::signature::SignatureInfo::default();
    let signed = cwa_exposure::sign_export(&export, &backend_key, &info);
    println!(
        "  CDN serves export.bin ({} bytes, {} keys, header {:?}) + export.sig ({} bytes, ECDSA-P256)",
        signed.export_bin.len(),
        export.keys.len(),
        String::from_utf8_lossy(&signed.export_bin[..12]),
        signed.export_sig.len(),
    );

    // ---- Every app instance downloads, VERIFIES the pinned signature,
    // and matches — this download is the HTTPS flow the paper's NetFlow
    // traces consist of. ----
    println!("\n== daily key download, signature check & on-phone matching ==");
    let downloaded = cwa_exposure::verify_export(&signed, &backend_key.verifying_key(), &info)
        .expect("signature verifies against the pinned key");
    for (name, device) in [("Bob", &bob), ("Carol", &carol)] {
        let matches = device.check_exposure(&downloaded.keys, day2);
        match matches.first() {
            Some(m) => {
                println!(
                    "  {name}: EXPOSED — {} matched intervals, {} min, attenuation {} dB, risk score {}",
                    m.matched_intervals, m.duration_minutes, m.min_attenuation_db, m.risk_score.0
                );
            }
            None => println!("  {name}: no exposure found"),
        }
    }

    // ---- Privacy property: metadata readable only after disclosure. ----
    let t = day0.advance(51);
    let adv = downloaded.keys[0].tek.rpi(t);
    let aem = downloaded.keys[0]
        .tek
        .encrypt_metadata(t, &cwa_exposure::advertisement::metadata_v1(-8));
    let meta = downloaded.keys[0].tek.decrypt_metadata(&adv, &aem);
    println!(
        "\nAfter disclosure, Bob can decrypt Alice's advertisement metadata: tx power {} dBm.",
        tx_power_from_metadata(&meta)
    );
    println!("Before disclosure, RPIs rotate every 10 min and are unlinkable.");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
