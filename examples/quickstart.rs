//! Quickstart: run the full reproduction at a small scale and print the
//! paper-vs-measured report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! What happens under the hood:
//!
//! 1. `cwa-simnet` builds Germany (401 districts, 6 ISPs, ~43k routing
//!    prefixes), runs the epidemic + adoption models for June 15–25
//!    2020, generates the CWA app/website HTTPS traffic those models
//!    imply, and captures it as sampled, Crypto-PAn-anonymized NetFlow
//!    at the vantage point in front of the CDN.
//! 2. `cwa-analysis` re-runs the paper's §2/§3 pipeline on the
//!    anonymized records only.
//! 3. `cwa-core` evaluates every figure and in-text claim (C1–C7)
//!    against tolerance bands.

use cwa_core::{Study, StudyConfig};

fn main() {
    // 2 % of Germany: runs in a few seconds, reproduces all shapes.
    let config = StudyConfig::at_scale(0.02);
    eprintln!(
        "simulating June 15–25, 2020 at scale {} (this is ~{}M simulated app users at peak) …",
        config.sim.scale,
        (16.0 * config.sim.scale * 10.0).round() / 10.0
    );

    let start = std::time::Instant::now();
    let report = Study::new(config).run().expect("study failed");
    eprintln!("done in {:?}\n", start.elapsed());

    println!("{}", report.render_text());

    if report.all_passed() {
        println!(
            "all {} claims reproduced within their bands ✓",
            report.claims.len()
        );
    } else {
        println!("claims outside their bands:");
        for c in report.failures() {
            println!(
                "  {}: measured {:.3}, band [{}, {}] — {}",
                c.id.code(),
                c.measured,
                c.band.0,
                c.band.1,
                c.detail
            );
        }
        std::process::exit(1);
    }
}
